//! The determinism & panic-policy rule passes.
//!
//! Every rule works on the lexed token stream of one file plus two derived
//! structures: *test regions* (lines covered by `#[cfg(test)]`/`#[test]`
//! items, which all rules skip) and *allow regions* (lines covered by a
//! `#[allow(clippy::unwrap_used, ...)]` attribute, which P1 audits).
//!
//! Rule catalogue (see DESIGN §12 for the full policy):
//!
//! * **D1** — no unordered iteration over `HashMap`/`HashSet`/`FxHashMap`/
//!   `FxHashSet` state in protocol paths, and no ad-hoc `std::collections`
//!   hash types there at all (their `RandomState` hasher randomises
//!   iteration order per process; `FxHash*` replays identically but still
//!   iterates in insertion-history order, which differs across shard
//!   merges). A site is clean when the same statement sorts or consumes
//!   order-insensitively (`len`/`count`/integer `sum`/`min`/`max`/...).
//! * **D2** — no ambient nondeterminism in sim crates: `Instant::now`,
//!   `SystemTime`, `RandomState`, thread identity, `temp_dir`,
//!   `available_parallelism`, or `env::var`-style reads.
//! * **D3** — `DetRng` is the only randomness source: any `rand`-crate
//!   surface (`thread_rng`, `StdRng`, `from_entropy`, ...) is banned
//!   workspace-wide.
//! * **D4** — no floating-point *accumulation* into persistent protocol or
//!   credit state: compound assignment on a float-typed name, a float
//!   assignment whose right side reads the same name (EWMA-style), or a
//!   `sum::<f32|f64>()` turbofish. Float arithmetic into locals and
//!   reporting files (`metrics.rs`, `stats.rs`) are out of scope.
//! * **P1** — panic-policy audit: every non-test `#[allow(clippy::
//!   unwrap_used/expect_used/indexing_slicing/panic/unreachable)]` must
//!   carry a justification comment directly above its attribute stack, and
//!   naked `.unwrap()`/`.expect(` outside any such allow region is flagged.

use crate::lexer::{lex, Lexed, Tok, TokKind};
use std::fmt;

/// A rule identifier.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// Unordered hash iteration / ad-hoc std hash types in protocol paths.
    D1,
    /// Ambient nondeterminism sources in sim crates.
    D2,
    /// Randomness outside `DetRng`.
    D3,
    /// Floating-point accumulation in protocol/credit state.
    D4,
    /// Panic-policy audit (unwrap/expect/indexing allowances).
    P1,
}

impl Rule {
    /// Stable id string (`"D1"`, ... `"P1"`).
    pub fn id(self) -> &'static str {
        match self {
            Rule::D1 => "D1",
            Rule::D2 => "D2",
            Rule::D3 => "D3",
            Rule::D4 => "D4",
            Rule::P1 => "P1",
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

/// Which rule families apply to a file (derived from its workspace path).
#[derive(Clone, Copy, Debug, Default)]
pub struct FileScope {
    /// vt-armci / vt-simnet protocol path: D1 and D4 apply.
    pub protocol_path: bool,
    /// Simulation crate: D2 applies. (D3 and P1 apply everywhere.)
    pub sim_crate: bool,
}

/// One raw finding inside a single file (no path; the workspace walker
/// attaches it).
#[derive(Clone, Debug)]
pub struct RawFinding {
    /// The rule that fired.
    pub rule: Rule,
    /// 1-based source line.
    pub line: u32,
    /// Human explanation of what fired and why it matters.
    pub note: String,
}

const HASH_TYPES: [&str; 4] = ["HashMap", "HashSet", "FxHashMap", "FxHashSet"];
const STD_HASH_TYPES: [&str; 2] = ["HashMap", "HashSet"];
const ITER_METHODS: [&str; 9] = [
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
];
/// Consumers that make iteration order irrelevant (or restore an order)
/// within the same statement. Float `sum` order-sensitivity is D4's job.
const ORDER_OK: [&str; 20] = [
    "sort",
    "sort_unstable",
    "sort_by",
    "sort_by_key",
    "sort_unstable_by",
    "sort_unstable_by_key",
    "count",
    "len",
    "sum",
    "product",
    "min",
    "max",
    "min_by_key",
    "max_by_key",
    "all",
    "any",
    "contains",
    "contains_key",
    "is_empty",
    "fold_first", // placeholder; plain `fold` is order-sensitive
];
const ORDERED_COLLECT: [&str; 3] = ["BTreeMap", "BTreeSet", "BinaryHeap"];
const D2_BARE: [&str; 6] = [
    "Instant",
    "SystemTime",
    "RandomState",
    "ThreadId",
    "temp_dir",
    "available_parallelism",
];
const D3_BARE: [&str; 6] = [
    "thread_rng",
    "StdRng",
    "SmallRng",
    "OsRng",
    "getrandom",
    "from_entropy",
];
const PANIC_LINTS: [&str; 5] = [
    "unwrap_used",
    "expect_used",
    "indexing_slicing",
    "panic",
    "unreachable",
];

/// Runs every applicable rule over one file's source.
pub fn check_file(src: &str, scope: FileScope) -> Vec<RawFinding> {
    let lexed = lex(src);
    let ctx = FileCtx::build(&lexed);
    let mut f = Vec::new();
    if scope.protocol_path {
        rule_d1(&lexed, &ctx, &mut f);
        rule_d4(&lexed, &ctx, &mut f);
    }
    if scope.sim_crate {
        rule_d2(&lexed, &ctx, &mut f);
    }
    rule_d3(&lexed, &ctx, &mut f);
    rule_p1(&lexed, &ctx, &mut f);
    f.sort_by_key(|x| (x.line, x.rule));
    f
}

/// An attribute (`#[...]`) occurrence: its idents, source line, and the
/// token index just past the closing `]`.
struct Attr {
    line: u32,
    idents: Vec<String>,
    start_idx: usize,
    end_idx: usize,
}

/// Line ranges derived from attributes.
struct FileCtx {
    /// True per 1-based line inside a `#[cfg(test)]` / `#[test]` item.
    test_lines: Vec<bool>,
    /// Regions covered by a panic-lint `#[allow(...)]`, as
    /// (first-attr-line, region-start-line, region-end-line, in-test).
    allow_regions: Vec<(u32, u32, u32, bool)>,
}

impl FileCtx {
    fn build(lexed: &Lexed) -> FileCtx {
        let toks = &lexed.toks;
        let attrs = collect_attrs(toks);
        let n = lexed.n_lines as usize;
        let mut test_lines = vec![false; n + 2];
        let mut allow_regions = Vec::new();
        // Group consecutive attribute stacks: attr k+1 starts right where
        // attr k ended.
        let mut i = 0usize;
        while i < attrs.len() {
            let mut j = i;
            while j + 1 < attrs.len() && attrs[j + 1].start_idx == attrs[j].end_idx {
                j += 1;
            }
            let stack = &attrs[i..=j];
            let is_test = stack.iter().any(|a| {
                a.idents.iter().any(|id| id == "test")
                    && (a.idents.len() == 1 || a.idents.iter().any(|id| id == "cfg"))
            });
            let is_panic_allow = stack.iter().any(|a| {
                a.idents.first().map(String::as_str) == Some("allow")
                    && a.idents.iter().any(|id| PANIC_LINTS.contains(&id.as_str()))
            });
            if is_test || is_panic_allow {
                let (start_line, end_line) = item_region(toks, stack[j - i].end_idx);
                if is_test {
                    for l in stack[0].line..=end_line {
                        if let Some(slot) = test_lines.get_mut(l as usize) {
                            *slot = true;
                        }
                    }
                }
                if is_panic_allow {
                    allow_regions.push((stack[0].line, start_line, end_line, is_test));
                }
            }
            i = j + 1;
        }
        // Allow regions declared inside a test region inherit test-ness
        // even when their own stack lacks cfg(test).
        let regions: Vec<_> = allow_regions
            .iter()
            .map(|&(al, s, e, t)| {
                let t = t || test_lines.get(al as usize).copied() == Some(true);
                (al, s, e, t)
            })
            .collect();
        FileCtx {
            test_lines,
            allow_regions: regions,
        }
    }

    fn in_test(&self, line: u32) -> bool {
        self.test_lines.get(line as usize).copied() == Some(true)
    }

    fn in_allow_region(&self, line: u32) -> bool {
        self.allow_regions
            .iter()
            .any(|&(_, s, e, _)| line >= s && line <= e)
    }
}

/// Collects every outer attribute `#[...]` (inner `#![...]` are skipped:
/// they scope the whole file and are never panic-allow sites in this
/// workspace — crate-wide allows would defeat the lint and are D-rule
/// findings in their own right if added).
fn collect_attrs(toks: &[Tok]) -> Vec<Attr> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i + 1 < toks.len() {
        if toks[i].text == "#" && toks[i + 1].text == "[" {
            let line = toks[i].line;
            let start_idx = i;
            let mut depth = 0i32;
            let mut idents = Vec::new();
            let mut j = i + 1;
            while j < toks.len() {
                match (toks[j].kind, toks[j].text.as_str()) {
                    (TokKind::Punct, "[") => depth += 1,
                    (TokKind::Punct, "]") => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    (TokKind::Ident, id) => idents.push(id.to_string()),
                    _ => {}
                }
                j += 1;
            }
            out.push(Attr {
                line,
                idents,
                start_idx,
                end_idx: j + 1,
            });
            i = j + 1;
        } else {
            i += 1;
        }
    }
    out
}

/// The line span of the item following an attribute stack: to the matching
/// `}` of its first depth-0 brace, or to the terminating `;` when no brace
/// opens first (statement-level attributes). A depth-0 `,` ends the region
/// only for non-item attributes (struct fields, enum variants, match arms)
/// — item forms like `fn .. where F: Fn(..) -> T, {` legitimately carry
/// depth-0 commas in their where clause.
fn item_region(toks: &[Tok], from_idx: usize) -> (u32, u32) {
    let start_line = toks
        .get(from_idx)
        .map(|t| t.line)
        .unwrap_or_else(|| toks.last().map(|t| t.line).unwrap_or(1));
    // Is this an item-introducing attribute (possibly behind visibility /
    // qualifier keywords)?
    let mut fn_like = false;
    let mut k = from_idx;
    for _ in 0..12 {
        match toks.get(k).map(|t| t.text.as_str()) {
            Some("fn" | "struct" | "enum" | "union" | "trait" | "impl" | "mod" | "macro_rules") => {
                fn_like = true;
                break;
            }
            Some(
                "pub" | "crate" | "super" | "self" | "in" | "unsafe" | "const" | "static" | "async"
                | "extern" | "default" | "(" | ")",
            ) => k += 1,
            _ => break,
        }
    }
    let mut depth = 0i32;
    for t in &toks[from_idx.min(toks.len())..] {
        match t.text.as_str() {
            "{" | "(" | "[" => depth += 1,
            "}" | ")" | "]" => {
                depth -= 1;
                if depth == 0 && t.text == "}" {
                    return (start_line, t.line);
                }
                // A closing token at negative depth means the attribute sat
                // last inside an enclosing block: end the region there.
                if depth < 0 {
                    return (start_line, t.line);
                }
            }
            ";" if depth == 0 => return (start_line, t.line),
            "," if depth == 0 && !fn_like => return (start_line, t.line),
            _ => {}
        }
    }
    let end = toks.last().map(|t| t.line).unwrap_or(start_line);
    (start_line, end)
}

/// Walks backwards from a type-ident position looking for the `name :`
/// declaring it (struct field, let binding, or fn param). Crosses path
/// segments (`std :: collections ::`) and generic/type punctuation.
fn declared_name(toks: &[Tok], type_idx: usize) -> Option<String> {
    let mut i = type_idx;
    let mut steps = 0usize;
    while i > 0 && steps < 24 {
        steps += 1;
        i -= 1;
        let t = &toks[i];
        match (t.kind, t.text.as_str()) {
            (TokKind::Punct, ":") => {
                if i > 0 && toks[i - 1].text == ":" {
                    // `::` path separator — skip it and keep walking.
                    i -= 1;
                    continue;
                }
                if i > 0 && toks[i - 1].kind == TokKind::Ident {
                    let name = toks[i - 1].text.clone();
                    // `mut` in `let mut x:` is not the name; neither are
                    // keywords that can't bind.
                    if name == "mut" || name == "let" {
                        return None;
                    }
                    return Some(name);
                }
                return None;
            }
            (TokKind::Ident, "as") => return None,
            (TokKind::Ident, _) | (TokKind::Lifetime, _) => {}
            (TokKind::Punct, "<" | ">" | "&" | "," | "(") => {}
            _ => return None,
        }
    }
    None
}

/// Collects names declared with a hash-table type or constructed from one
/// (`let seen = FxHashSet::default()`).
fn hash_names(toks: &[Tok]) -> Vec<String> {
    let mut names = Vec::new();
    for i in 0..toks.len() {
        if toks[i].kind != TokKind::Ident || !HASH_TYPES.contains(&toks[i].text.as_str()) {
            continue;
        }
        // Declared type: `name: [path::]HashX<...>`.
        if toks.get(i + 1).map(|t| t.text.as_str()) == Some("<") {
            if let Some(n) = declared_name(toks, i) {
                push_unique(&mut names, n);
                continue;
            }
        }
        // Constructor: `let [mut] name [: _] = [path::]HashX::ctor(...)`.
        let is_ctor = toks.get(i + 1).map(|t| t.text.as_str()) == Some(":")
            && toks.get(i + 2).map(|t| t.text.as_str()) == Some(":");
        let turbofish_ctor = toks.get(i + 1).map(|t| t.text.as_str()) == Some("<");
        if is_ctor || turbofish_ctor {
            if let Some(n) = let_binding_name(toks, i) {
                push_unique(&mut names, n);
            }
        }
    }
    names
}

/// Collects names declared with a type mentioning `f32`/`f64`.
fn float_names(toks: &[Tok]) -> Vec<String> {
    let mut names = Vec::new();
    for i in 0..toks.len() {
        if toks[i].kind == TokKind::Ident && (toks[i].text == "f64" || toks[i].text == "f32") {
            if let Some(n) = declared_name(toks, i) {
                push_unique(&mut names, n);
            }
        }
    }
    names
}

fn push_unique(v: &mut Vec<String>, s: String) {
    if !v.contains(&s) {
        v.push(s);
    }
}

/// Finds the `let [mut] name` opening the statement containing `idx`.
fn let_binding_name(toks: &[Tok], idx: usize) -> Option<String> {
    let start = stmt_start(toks, idx);
    if toks.get(start).map(|t| t.text.as_str()) != Some("let") {
        return None;
    }
    let mut j = start + 1;
    if toks.get(j).map(|t| t.text.as_str()) == Some("mut") {
        j += 1;
    }
    let t = toks.get(j)?;
    (t.kind == TokKind::Ident).then(|| t.text.clone())
}

/// Index of the first token of the statement containing `idx` (just past
/// the previous `;`, `{`, or `}`).
fn stmt_start(toks: &[Tok], idx: usize) -> usize {
    let mut i = idx;
    while i > 0 {
        match toks[i - 1].text.as_str() {
            ";" | "{" | "}" => return i,
            _ => i -= 1,
        }
    }
    0
}

/// Token index just past the statement containing `idx` (the next `;` at
/// the statement's brace depth, or the `{` opening a block body).
fn stmt_end(toks: &[Tok], idx: usize) -> usize {
    let mut depth = 0i32;
    for (off, t) in toks[idx..].iter().enumerate() {
        match t.text.as_str() {
            "(" | "[" => depth += 1,
            ")" | "]" => depth -= 1,
            ";" if depth <= 0 => return idx + off,
            "{" if depth <= 0 => return idx + off,
            "}" if depth <= 0 => return idx + off,
            _ => {}
        }
    }
    toks.len()
}

/// True when the statement around `idx` contains an order-insensitive or
/// order-restoring consumer, collects into an ordered container, or is
/// immediately followed by a statement that sorts (the common
/// collect-into-Vec-then-sort idiom).
fn statement_restores_order(toks: &[Tok], idx: usize) -> bool {
    let s = stmt_start(toks, idx);
    let e = stmt_end(toks, idx);
    let same_stmt = toks[s..e].iter().any(|t| {
        t.kind == TokKind::Ident
            && (ORDER_OK.contains(&t.text.as_str()) || ORDERED_COLLECT.contains(&t.text.as_str()))
    });
    if same_stmt {
        return true;
    }
    // Next statement: only an explicit sort redeems an already-collected
    // unordered sequence (a `len()` there would not — the vec still holds
    // nondeterministic order that can escape).
    if e < toks.len() && toks[e].text == ";" {
        let ns = e + 1;
        let ne = stmt_end(toks, ns);
        return toks[ns..ne.min(toks.len())]
            .iter()
            .any(|t| t.kind == TokKind::Ident && t.text.starts_with("sort"));
    }
    false
}

fn rule_d1(lexed: &Lexed, ctx: &FileCtx, out: &mut Vec<RawFinding>) {
    let toks = &lexed.toks;
    let hashes = hash_names(toks);
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind != TokKind::Ident || ctx.in_test(t.line) {
            continue;
        }
        // (a) `recv.iter()` / `recv.keys()` / ... on a hash-typed name.
        if ITER_METHODS.contains(&t.text.as_str())
            && toks.get(i + 1).map(|x| x.text.as_str()) == Some("(")
            && i >= 2
            && toks[i - 1].text == "."
            && toks[i - 2].kind == TokKind::Ident
            && hashes.contains(&toks[i - 2].text)
            && !statement_restores_order(toks, i)
        {
            out.push(RawFinding {
                rule: Rule::D1,
                line: t.line,
                note: format!(
                    "unordered iteration: `{}.{}()` on a hash table in a protocol path; \
                     sort first, consume order-insensitively, or use a BTree container \
                     (allowlist with justification if the order provably cannot escape)",
                    toks[i - 2].text,
                    t.text
                ),
            });
            continue;
        }
        // (a') `for x in [&[mut]] recv { ... }` over a hash-typed name.
        if t.text == "for" {
            let mut j = i + 1;
            while j < toks.len() && toks[j].text != "in" && toks[j].text != "{" {
                j += 1;
            }
            if j < toks.len() && toks[j].text == "in" {
                let body = (j + 1..toks.len())
                    .find(|&k| toks[k].text == "{")
                    .unwrap_or(toks.len());
                let iterated_hash = toks[j + 1..body].iter().find(|x| {
                    x.kind == TokKind::Ident
                        && hashes.contains(&x.text)
                        // Exclude a hash name that is merely an argument of
                        // a suppressing consumer in the loop header.
                        && !toks[j + 1..body].iter().any(|y| {
                            y.kind == TokKind::Ident && ORDER_OK.contains(&y.text.as_str())
                        })
                });
                if let Some(h) = iterated_hash {
                    out.push(RawFinding {
                        rule: Rule::D1,
                        line: t.line,
                        note: format!(
                            "unordered iteration: `for .. in` over hash table `{}` in a \
                             protocol path; iterate a sorted copy or switch to a BTree \
                             container",
                            h.text
                        ),
                    });
                }
            }
            continue;
        }
        // (b) ad-hoc std hash types anywhere in a protocol path: their
        // default RandomState hasher randomises iteration per process.
        if STD_HASH_TYPES.contains(&t.text.as_str()) {
            // `FxHashMap` contains `HashMap` only as a distinct ident, so a
            // bare match here really is the std type — unless this is the
            // path suffix `fx::HashMap` (not used in this workspace) or a
            // generic parameter like `HashMap<K, V, FxBuildHasher>`.
            let fx_aliased = i >= 2
                && toks[i - 1].text == ":"
                && toks[i - 2].text == ":"
                && i >= 3
                && toks[i - 3].text.starts_with("Fx");
            if !fx_aliased {
                out.push(RawFinding {
                    rule: Rule::D1,
                    line: t.line,
                    note: format!(
                        "ad-hoc `std::collections::{}` in a protocol path: its RandomState \
                         hasher randomises iteration order per process; use Fx{} (replay-\
                         deterministic lookups) or BTree{} (stable order) instead",
                        t.text,
                        t.text,
                        t.text.trim_start_matches("Hash")
                    ),
                });
            }
        }
    }
}

fn rule_d2(lexed: &Lexed, ctx: &FileCtx, out: &mut Vec<RawFinding>) {
    let toks = &lexed.toks;
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind != TokKind::Ident || ctx.in_test(t.line) {
            continue;
        }
        if D2_BARE.contains(&t.text.as_str()) {
            out.push(RawFinding {
                rule: Rule::D2,
                line: t.line,
                note: format!(
                    "ambient nondeterminism source `{}` in a sim crate: wall clocks, hasher \
                     seeds, and machine parallelism must not influence simulation state",
                    t.text
                ),
            });
            continue;
        }
        // `thread::current`, `process::id`, `env::var{,_os}` / `env::vars`.
        let path2 = |a: &str, b: &str| {
            t.text == a
                && toks.get(i + 1).map(|x| x.text.as_str()) == Some(":")
                && toks.get(i + 2).map(|x| x.text.as_str()) == Some(":")
                && toks.get(i + 3).map(|x| x.text.as_str()) == Some(b)
        };
        for (m, b) in [
            ("thread", "current"),
            ("process", "id"),
            ("env", "var"),
            ("env", "var_os"),
            ("env", "vars"),
            ("env", "vars_os"),
        ] {
            if path2(m, b) {
                out.push(RawFinding {
                    rule: Rule::D2,
                    line: t.line,
                    note: format!(
                        "ambient nondeterminism source `{m}::{b}` in a sim crate: thread/\
                         process identity and environment reads belong in config parsing, \
                         not simulation code"
                    ),
                });
            }
        }
    }
}

fn rule_d3(lexed: &Lexed, ctx: &FileCtx, out: &mut Vec<RawFinding>) {
    let toks = &lexed.toks;
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind != TokKind::Ident || ctx.in_test(t.line) {
            continue;
        }
        let rand_path = t.text == "rand"
            && toks.get(i + 1).map(|x| x.text.as_str()) == Some(":")
            && toks.get(i + 2).map(|x| x.text.as_str()) == Some(":");
        if D3_BARE.contains(&t.text.as_str()) || rand_path {
            out.push(RawFinding {
                rule: Rule::D3,
                line: t.line,
                note: format!(
                    "randomness source `{}` outside DetRng: all stochastic behaviour must \
                     flow from the seeded, replayable `vt_simnet::DetRng`",
                    t.text
                ),
            });
        }
    }
}

fn rule_d4(lexed: &Lexed, ctx: &FileCtx, out: &mut Vec<RawFinding>) {
    let toks = &lexed.toks;
    let floats = float_names(toks);
    for i in 0..toks.len() {
        let t = &toks[i];
        if ctx.in_test(t.line) {
            continue;
        }
        // `sum::<f64>()` turbofish.
        if t.kind == TokKind::Ident
            && t.text == "sum"
            && toks.get(i + 1).map(|x| x.text.as_str()) == Some(":")
            && toks.get(i + 2).map(|x| x.text.as_str()) == Some(":")
            && toks.get(i + 3).map(|x| x.text.as_str()) == Some("<")
            && toks
                .get(i + 4)
                .is_some_and(|x| x.text == "f64" || x.text == "f32")
        {
            out.push(RawFinding {
                rule: Rule::D4,
                line: t.line,
                note: "floating-point reduction `sum::<float>()` in a protocol path: \
                       accumulation order changes the result across shard merges; keep \
                       protocol state integral (ns, bytes, counts)"
                    .into(),
            });
            continue;
        }
        if t.kind != TokKind::Ident || !floats.contains(&t.text) {
            continue;
        }
        // Optional index group after the name: `name[idx]`.
        let mut j = i + 1;
        if toks.get(j).map(|x| x.text.as_str()) == Some("[") {
            let mut depth = 0i32;
            while j < toks.len() {
                match toks[j].text.as_str() {
                    "[" => depth += 1,
                    "]" => {
                        depth -= 1;
                        if depth == 0 {
                            j += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
        }
        let (op, eq, after_eq) = (
            toks.get(j).map(|x| x.text.clone()).unwrap_or_default(),
            toks.get(j + 1).map(|x| x.text.clone()).unwrap_or_default(),
            toks.get(j + 2).map(|x| x.text.clone()).unwrap_or_default(),
        );
        // Compound assignment `name op= rhs`.
        if matches!(op.as_str(), "+" | "-" | "*" | "/") && eq == "=" {
            out.push(RawFinding {
                rule: Rule::D4,
                line: t.line,
                note: format!(
                    "floating-point accumulation `{} {op}= ..` into protocol state: \
                     the running value depends on event merge order; use integer units \
                     or allowlist with a determinism argument",
                    t.text
                ),
            });
            continue;
        }
        // Self-referential assignment `name = .. name ..` (EWMA-style).
        if op == "=" && eq != "=" && after_eq != "=" {
            let end = stmt_end(toks, j + 1);
            if toks[j + 1..end]
                .iter()
                .any(|x| x.kind == TokKind::Ident && x.text == t.text)
            {
                out.push(RawFinding {
                    rule: Rule::D4,
                    line: t.line,
                    note: format!(
                        "floating-point running update `{0} = f({0}, ..)` in protocol \
                         state: accumulation order changes the value across shard \
                         merges; use integer units or allowlist with a determinism \
                         argument",
                        t.text
                    ),
                });
            }
        }
    }
}

fn rule_p1(lexed: &Lexed, ctx: &FileCtx, out: &mut Vec<RawFinding>) {
    let toks = &lexed.toks;
    // (a) every non-test panic-allow must carry a justification comment
    // directly above its attribute stack.
    for &(attr_line, _, _, in_test) in &ctx.allow_regions {
        if in_test {
            continue;
        }
        // A justification may sit directly above the attribute stack or
        // trail on the attribute line itself (`#[allow(...)] // why`).
        if !lexed.has_comment(attr_line.saturating_sub(1)) && !lexed.has_comment(attr_line) {
            out.push(RawFinding {
                rule: Rule::P1,
                line: attr_line,
                note: "panic-policy allowance without justification: a non-test \
                       `#[allow(clippy::unwrap_used/expect_used/...)]` must state the \
                       invariant that makes the panic unreachable in a comment directly \
                       above the attribute"
                    .into(),
            });
        }
    }
    // (b) naked `.unwrap()` / `.expect(` outside tests and allow regions.
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind != TokKind::Ident
            || (t.text != "unwrap" && t.text != "expect")
            || ctx.in_test(t.line)
            || ctx.in_allow_region(t.line)
        {
            continue;
        }
        let called = toks.get(i + 1).map(|x| x.text.as_str()) == Some("(");
        let method = i >= 1 && toks[i - 1].text == ".";
        if called && method {
            out.push(RawFinding {
                rule: Rule::P1,
                line: t.line,
                note: format!(
                    "naked `.{}()` outside any justified allow region: return a typed \
                     error, or cover the site with a commented \
                     `#[allow(clippy::{}_used)]`",
                    t.text, t.text
                ),
            });
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    fn run(src: &str, protocol: bool, sim: bool) -> Vec<RawFinding> {
        check_file(
            src,
            FileScope {
                protocol_path: protocol,
                sim_crate: sim,
            },
        )
    }

    #[test]
    fn d1_fires_on_hash_iteration_and_std_types() {
        let src = "struct S { m: FxHashMap<u32, u32> }\n\
                   impl S { fn f(&self) -> Vec<u32> { self.m.keys().copied().collect() } }\n\
                   fn g() { let s: std::collections::HashSet<u32> = Default::default(); drop(s); }\n";
        let f = run(src, true, true);
        assert!(f.iter().any(|x| x.rule == Rule::D1 && x.line == 2), "{f:?}");
        assert!(f.iter().any(|x| x.rule == Rule::D1 && x.line == 3), "{f:?}");
    }

    #[test]
    fn d1_suppressed_by_sort_and_order_insensitive_consumers() {
        let src = "struct S { m: FxHashMap<u32, u32> }\n\
                   impl S {\n\
                   fn a(&self) -> usize { self.m.keys().count() }\n\
                   fn b(&self) -> u64 { self.m.values().map(|&v| u64::from(v)).sum() }\n\
                   fn c(&self) -> Vec<u32> { let mut v: Vec<u32> = self.m.keys().copied().collect(); v.sort_unstable(); v }\n\
                   }\n";
        let f = run(src, true, true);
        let d1: Vec<_> = f.iter().filter(|x| x.rule == Rule::D1).collect();
        // Line 3/4: order-insensitive consumers. Line 5: collect-then-sort
        // in the immediately following statement.
        assert!(
            d1.iter().all(|x| x.line != 3 && x.line != 4 && x.line != 5),
            "{d1:?}"
        );
    }

    #[test]
    fn d1_for_loop_over_hash() {
        let src = "fn f() { let mut seen = FxHashSet::default(); seen.insert(1u32);\n\
                   for v in &seen { drop(v); } }\n";
        let f = run(src, true, false);
        assert!(f.iter().any(|x| x.rule == Rule::D1 && x.line == 2), "{f:?}");
    }

    #[test]
    fn d2_and_d3_fire_only_in_scope() {
        let src = "fn f() { let t = Instant::now(); let r = thread_rng(); }\n";
        let f = run(src, false, true);
        assert!(f.iter().any(|x| x.rule == Rule::D2));
        assert!(f.iter().any(|x| x.rule == Rule::D3));
        let f2 = run(src, false, false);
        assert!(!f2.iter().any(|x| x.rule == Rule::D2));
        assert!(
            f2.iter().any(|x| x.rule == Rule::D3),
            "D3 is workspace-wide"
        );
    }

    #[test]
    fn d4_fires_on_compound_and_ewma_not_plain_math() {
        let src = "struct S { acc: f64, v: Vec<f64> }\n\
                   impl S {\n\
                   fn a(&mut self, x: f64) { self.acc += x; }\n\
                   fn b(&mut self, i: usize, x: f64) { self.v[i] = 0.8 * self.v[i] + x; }\n\
                   fn c(&self, x: f64) -> f64 { x * 2.0 }\n\
                   }\n";
        let f = run(src, true, false);
        assert!(f.iter().any(|x| x.rule == Rule::D4 && x.line == 3), "{f:?}");
        assert!(f.iter().any(|x| x.rule == Rule::D4 && x.line == 4), "{f:?}");
        assert!(
            !f.iter().any(|x| x.rule == Rule::D4 && x.line == 5),
            "{f:?}"
        );
    }

    #[test]
    fn p1_requires_justification_comment() {
        let bad = "#[allow(clippy::expect_used)]\nfn f() { g().expect(\"x\"); }\n";
        let good = "// Invariant: g always returns Some after init.\n\
                    #[allow(clippy::expect_used)]\nfn f() { g().expect(\"x\"); }\n";
        assert!(run(bad, false, false)
            .iter()
            .any(|x| x.rule == Rule::P1 && x.line == 1));
        assert!(run(good, false, false).is_empty());
    }

    #[test]
    fn p1_flags_naked_unwrap_outside_allow() {
        let src = "fn f() { g().unwrap(); }\n";
        let f = run(src, false, false);
        assert!(f.iter().any(|x| x.rule == Rule::P1 && x.line == 1));
    }

    #[test]
    fn test_modules_are_exempt() {
        let src = "#[cfg(test)]\n#[allow(clippy::unwrap_used, clippy::expect_used)]\n\
                   mod tests {\n  fn f() { g().unwrap(); let t = Instant::now(); \
                   let m: std::collections::HashMap<u32,u32> = Default::default(); \
                   for x in m.keys() { drop(x); } }\n}\n";
        assert!(run(src, true, true).is_empty());
    }

    #[test]
    fn comments_and_strings_never_fire() {
        let src = "// Instant::now() would be bad\nfn f() -> &'static str { \"thread_rng\" }\n";
        assert!(run(src, true, true).is_empty());
    }

    #[test]
    fn allow_region_covers_fn_body_past_where_clause_comma() {
        // The depth-0 comma ending the where clause must not terminate the
        // attribute's item region before the body opens.
        let src = "// invariant: x is always Some here by construction of f\n\
                   #[allow(clippy::expect_used)]\n\
                   fn f<T>(x: Option<T>) -> T\n\
                   where\n\
                       T: Clone,\n\
                   {\n\
                       x.expect(\"always Some\")\n\
                   }\n";
        let f = run(src, true, true);
        assert!(f.iter().all(|x| x.rule != Rule::P1), "{f:?}");
    }

    #[test]
    fn field_attr_region_still_ends_at_comma() {
        // A field-level allow must not leak past its own field: the expect
        // in `f` below is naked.
        let src = "struct S {\n\
                   #[allow(dead_code)]\n\
                   a: u32,\n\
                   }\n\
                   fn f(x: Option<u32>) -> u32 { x.expect(\"boom\") }\n";
        let f = run(src, true, true);
        assert!(f.iter().any(|x| x.rule == Rule::P1 && x.line == 5), "{f:?}");
    }
}
