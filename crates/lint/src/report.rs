//! Rendering of lint results: human text and hand-rolled JSON (the
//! vendored serde shim provides no serialization), mirroring
//! `vt-analyze`'s report idiom.

use crate::rules::Rule;
use std::fmt::Write as _;

/// One finding, located in the workspace.
#[derive(Clone, Debug)]
pub struct Finding {
    /// The rule that fired.
    pub rule: Rule,
    /// Repo-relative path (`crates/armci/src/engine.rs`).
    pub path: String,
    /// 1-based source line.
    pub line: u32,
    /// The offending source line, trimmed.
    pub snippet: String,
    /// Why the rule fired.
    pub note: String,
}

/// The full result of a workspace lint run.
#[derive(Clone, Debug, Default)]
pub struct LintReport {
    /// Unallowlisted findings — any entry here fails the gate.
    pub findings: Vec<Finding>,
    /// Findings matched (and silenced) by `lint_allow.toml` entries.
    pub allowed: Vec<Finding>,
    /// Number of files scanned.
    pub files_scanned: usize,
    /// Number of allowlist entries loaded.
    pub allow_entries: usize,
}

impl LintReport {
    /// True when the gate passes.
    pub fn clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Human rendering: one block per finding, then a summary line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            let _ = writeln!(out, "{}:{} [{}] {}", f.path, f.line, f.rule, f.note);
            let _ = writeln!(out, "    {}", f.snippet);
        }
        let _ = writeln!(
            out,
            "vt-lint: {} file(s) scanned, {} finding(s), {} allowlisted \
             (register: {} entr{})",
            self.files_scanned,
            self.findings.len(),
            self.allowed.len(),
            self.allow_entries,
            if self.allow_entries == 1 { "y" } else { "ies" },
        );
        let _ = writeln!(
            out,
            "determinism gate: {}",
            if self.clean() { "CLEAN" } else { "FINDINGS" }
        );
        out
    }

    /// Machine-readable JSON document.
    pub fn to_json(&self) -> String {
        let one = |f: &Finding| {
            format!(
                "{{\"rule\":\"{}\",\"path\":\"{}\",\"line\":{},\"snippet\":\"{}\",\"note\":\"{}\"}}",
                f.rule,
                json_escape(&f.path),
                f.line,
                json_escape(&f.snippet),
                json_escape(&f.note)
            )
        };
        let findings: Vec<String> = self.findings.iter().map(one).collect();
        let allowed: Vec<String> = self.allowed.iter().map(one).collect();
        format!(
            "{{\"tool\":\"vt-lint\",\"clean\":{},\"files_scanned\":{},\"allow_entries\":{},\
             \"findings\":[{}],\"allowed\":[{}]}}",
            self.clean(),
            self.files_scanned,
            self.allow_entries,
            findings.join(","),
            allowed.join(",")
        )
    }
}

/// Minimal JSON string escaping (same contract as `vt_analyze`'s).
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    fn finding() -> Finding {
        Finding {
            rule: Rule::D1,
            path: "crates/armci/src/engine.rs".into(),
            line: 42,
            snippet: "for k in map.keys() {".into(),
            note: "unordered iteration".into(),
        }
    }

    #[test]
    fn human_render_has_location_and_verdict() {
        let mut r = LintReport {
            files_scanned: 3,
            ..Default::default()
        };
        assert!(r.render().contains("CLEAN"));
        r.findings.push(finding());
        let text = r.render();
        assert!(text.contains("crates/armci/src/engine.rs:42 [D1]"));
        assert!(text.contains("FINDINGS"));
    }

    #[test]
    fn json_is_well_formed_and_escaped() {
        let mut f = finding();
        f.note = "a \"quoted\"\nnote".into();
        let r = LintReport {
            findings: vec![f],
            files_scanned: 1,
            ..Default::default()
        };
        let j = r.to_json();
        assert!(j.contains("\"clean\":false"));
        assert!(j.contains("\\\"quoted\\\"\\nnote"));
        assert!(!j.contains('\n'));
    }
}
