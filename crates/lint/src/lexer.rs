//! A minimal Rust lexer for static analysis.
//!
//! The build environment is fully offline (no `syn`/`proc-macro2`), so the
//! analyzer works on a hand-rolled token stream instead of a full AST. The
//! lexer's one job is to be *sound about what is code*: string/char/raw
//! literals and comments must never leak their contents into the identifier
//! stream, or every rule would false-positive on prose like
//! `// Instant of the crash`. Comments are preserved out-of-band (keyed by
//! line) because rule P1 checks that `#[allow(...)]` sites carry a
//! justification comment.

/// Kind of a lexed token.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`for`, `let`, `HashMap`, ...).
    Ident,
    /// A single punctuation character (`.`, `:`, `#`, ...). Multi-char
    /// operators appear as adjacent tokens; rules match the sequence.
    Punct,
    /// Any literal: string, raw string, char, byte string, or number.
    Lit,
    /// A lifetime (`'a`) — distinguished from char literals.
    Lifetime,
}

/// One token with its source line (1-based).
#[derive(Clone, Debug)]
pub struct Tok {
    /// What kind of token this is.
    pub kind: TokKind,
    /// The token text. For literals only the opening character is kept
    /// (contents are irrelevant to every rule and may be large).
    pub text: String,
    /// 1-based source line the token starts on.
    pub line: u32,
}

/// A lexed source file: the token stream plus per-line comment text.
#[derive(Debug, Default)]
pub struct Lexed {
    /// The token stream, comments and whitespace removed.
    pub toks: Vec<Tok>,
    /// `comment_lines[i]` is true when 1-based line `i + 1` contains (or is
    /// inside) a comment. Used by P1's justification check.
    pub comment_lines: Vec<bool>,
    /// Total number of lines in the file.
    pub n_lines: u32,
}

impl Lexed {
    /// True when 1-based `line` carries a comment.
    pub fn has_comment(&self, line: u32) -> bool {
        line >= 1 && self.comment_lines.get(line as usize - 1).copied() == Some(true)
    }
}

/// Lexes Rust source. Never fails: unterminated literals simply consume to
/// end-of-file, which is fine for analysis (rustc rejects such files long
/// before the lint gate runs).
pub fn lex(src: &str) -> Lexed {
    let b: Vec<char> = src.chars().collect();
    let n_lines = src.lines().count() as u32;
    let mut out = Lexed {
        toks: Vec::new(),
        comment_lines: vec![false; src.lines().count()],
        n_lines,
    };
    let mut i = 0usize;
    let mut line: u32 = 1;
    let mark_comment = |out: &mut Lexed, l: u32| {
        if l >= 1 {
            if let Some(slot) = out.comment_lines.get_mut(l as usize - 1) {
                *slot = true;
            }
        }
    };
    while i < b.len() {
        let c = b[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if b.get(i + 1) == Some(&'/') => {
                // Line comment (incl. /// and //!).
                mark_comment(&mut out, line);
                while i < b.len() && b[i] != '\n' {
                    i += 1;
                }
            }
            '/' if b.get(i + 1) == Some(&'*') => {
                // Block comment, nested per Rust.
                let mut depth = 1u32;
                mark_comment(&mut out, line);
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == '\n' {
                        line += 1;
                        mark_comment(&mut out, line);
                    } else if b[i] == '/' && b.get(i + 1) == Some(&'*') {
                        depth += 1;
                        i += 1;
                    } else if b[i] == '*' && b.get(i + 1) == Some(&'/') {
                        depth -= 1;
                        i += 1;
                    }
                    i += 1;
                }
            }
            '"' => {
                out.toks.push(Tok {
                    kind: TokKind::Lit,
                    text: "\"".into(),
                    line,
                });
                i = skip_string(&b, i + 1, &mut line);
            }
            'r' | 'b' | 'c' if is_literal_prefix(&b, i) => {
                let start_line = line;
                i = skip_prefixed_literal(&b, i, &mut line);
                out.toks.push(Tok {
                    kind: TokKind::Lit,
                    text: "\"".into(),
                    line: start_line,
                });
            }
            '\'' => {
                // Lifetime ('a, 'static) vs char literal ('x', '\n', '\'').
                let next = b.get(i + 1).copied();
                let after = b.get(i + 2).copied();
                let is_lifetime = matches!(next, Some(ch) if ch == '_' || ch.is_alphabetic())
                    && after != Some('\'');
                if is_lifetime {
                    let mut j = i + 1;
                    while j < b.len() && (b[j] == '_' || b[j].is_alphanumeric()) {
                        j += 1;
                    }
                    out.toks.push(Tok {
                        kind: TokKind::Lifetime,
                        text: b[i..j].iter().collect(),
                        line,
                    });
                    i = j;
                } else {
                    out.toks.push(Tok {
                        kind: TokKind::Lit,
                        text: "'".into(),
                        line,
                    });
                    i += 1;
                    if b.get(i) == Some(&'\\') {
                        i += 1;
                        // Skip the escaped char; \u{...} consumes to '}'.
                        if b.get(i) == Some(&'u') && b.get(i + 1) == Some(&'{') {
                            while i < b.len() && b[i] != '}' {
                                i += 1;
                            }
                        }
                        i += 1;
                    } else if i < b.len() {
                        i += 1;
                    }
                    if b.get(i) == Some(&'\'') {
                        i += 1;
                    }
                }
            }
            c if c == '_' || c.is_alphabetic() => {
                let mut j = i + 1;
                while j < b.len() && (b[j] == '_' || b[j].is_alphanumeric()) {
                    j += 1;
                }
                out.toks.push(Tok {
                    kind: TokKind::Ident,
                    text: b[i..j].iter().collect(),
                    line,
                });
                i = j;
            }
            c if c.is_ascii_digit() => {
                let mut j = i + 1;
                while j < b.len() && (b[j] == '_' || b[j].is_alphanumeric()) {
                    j += 1;
                }
                // Float continuation: `1.5` but not the range `1..5` or a
                // method call `1.max(2)`.
                if j < b.len() && b[j] == '.' && b.get(j + 1).is_some_and(|d| d.is_ascii_digit()) {
                    j += 1;
                    while j < b.len() && (b[j] == '_' || b[j].is_alphanumeric()) {
                        j += 1;
                    }
                }
                out.toks.push(Tok {
                    kind: TokKind::Lit,
                    text: "0".into(),
                    line,
                });
                i = j;
            }
            c => {
                out.toks.push(Tok {
                    kind: TokKind::Punct,
                    text: c.to_string(),
                    line,
                });
                i += 1;
            }
        }
    }
    out
}

/// True when position `i` starts a raw/byte/C string prefix (`r"`, `r#"`,
/// `b"`, `br"`, `c"`, ...) rather than an identifier that happens to start
/// with `r`/`b`/`c`.
fn is_literal_prefix(b: &[char], i: usize) -> bool {
    let mut j = i;
    // Up to two prefix letters (br, cr) then optional #s then a quote.
    while j < b.len() && matches!(b[j], 'r' | 'b' | 'c') && j - i < 2 {
        j += 1;
    }
    while j < b.len() && b[j] == '#' {
        j += 1;
    }
    j < b.len() && (b[j] == '"' || (b[j] == '\'' && b[i] == 'b'))
}

/// Skips a normal (escaped) string body starting just after the opening
/// quote; returns the index just past the closing quote.
fn skip_string(b: &[char], mut i: usize, line: &mut u32) -> usize {
    while i < b.len() {
        match b[i] {
            '\\' => {
                // A line-continuation escape (`\` before newline) still
                // consumes the newline — count it.
                if b.get(i + 1) == Some(&'\n') {
                    *line += 1;
                }
                i += 2;
            }
            '"' => return i + 1,
            '\n' => {
                *line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    i
}

/// Skips `r"..."`, `r#"..."#`, `b"..."`, `br#"..."#`, `b'x'`, `c"..."`.
fn skip_prefixed_literal(b: &[char], mut i: usize, line: &mut u32) -> usize {
    let mut raw = false;
    let mut byte_char = false;
    while i < b.len() && matches!(b[i], 'r' | 'b' | 'c') {
        raw |= b[i] == 'r';
        i += 1;
    }
    let mut hashes = 0usize;
    while i < b.len() && b[i] == '#' {
        hashes += 1;
        i += 1;
    }
    if i < b.len() && b[i] == '\'' {
        byte_char = true;
    }
    if byte_char {
        // b'x' or b'\n'
        i += 1;
        if b.get(i) == Some(&'\\') {
            i += 1;
        }
        i += 1;
        if b.get(i) == Some(&'\'') {
            i += 1;
        }
        return i;
    }
    i += 1; // opening quote
    if raw {
        // Scan for `"` followed by `hashes` hash marks.
        while i < b.len() {
            if b[i] == '\n' {
                *line += 1;
            }
            if b[i] == '"' {
                let mut k = 0usize;
                while k < hashes && b.get(i + 1 + k) == Some(&'#') {
                    k += 1;
                }
                if k == hashes {
                    return i + 1 + hashes;
                }
            }
            i += 1;
        }
        i
    } else {
        skip_string(b, i, line)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .toks
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn strings_and_comments_hide_identifiers() {
        let src = r###"
            // Instant of the crash
            let x = "Instant::now"; /* SystemTime */
            let y = r#"RandomState"#;
        "###;
        let ids = idents(src);
        assert!(ids.contains(&"let".to_string()));
        assert!(!ids.contains(&"Instant".to_string()));
        assert!(!ids.contains(&"SystemTime".to_string()));
        assert!(!ids.contains(&"RandomState".to_string()));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = lex("fn f<'a>(x: &'a str) -> char { 'x' }").toks;
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 2);
        assert!(toks.iter().any(|t| t.kind == TokKind::Lit && t.text == "'"));
    }

    #[test]
    fn comment_lines_are_recorded() {
        let l = lex("let a = 1;\n// why\nlet b = 2; // trailing\n/* block\nspans */\nlet c;\n");
        assert!(!l.has_comment(1));
        assert!(l.has_comment(2));
        assert!(l.has_comment(3));
        assert!(l.has_comment(4));
        assert!(l.has_comment(5));
        assert!(!l.has_comment(6));
    }

    #[test]
    fn float_vs_range_literals() {
        let toks = lex("for i in 0..10 { x += 1.5; }").toks;
        let dots = toks
            .iter()
            .filter(|t| t.kind == TokKind::Punct && t.text == ".")
            .count();
        // The `..` of the range survives as two dot puncts; the `.5` of
        // the float is folded into its number literal.
        assert_eq!(dots, 2);
    }

    #[test]
    fn string_continuation_escapes_count_lines() {
        // The string literal spans lines 1-2 via a `\`-newline
        // continuation; `next` sits on line 3.
        let src = "let s = \"a \\\n b\";\nlet next = 1;\n";
        let toks = lex(src).toks;
        let next = toks.iter().find(|t| t.text == "next").unwrap();
        assert_eq!(next.line, 3);
    }

    #[test]
    fn nested_block_comments() {
        let ids = idents("/* a /* b */ still comment */ real");
        assert_eq!(ids, vec!["real".to_string()]);
    }

    #[test]
    fn byte_and_c_strings_are_literals() {
        let ids = idents(r#"let x = b"Instant"; let y = c"SystemTime"; let z = b'x';"#);
        assert!(!ids.contains(&"Instant".to_string()));
        assert!(!ids.contains(&"SystemTime".to_string()));
    }
}
