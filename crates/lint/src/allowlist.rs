//! The committed exception register, `lint_allow.toml`.
//!
//! Each entry names a rule, the file, a `pattern` substring of the
//! offending source line, and a **mandatory justification**. Matching on a
//! line-content substring instead of a line number keeps entries stable
//! across unrelated edits to the same file. Stale entries (matching no
//! finding) are a hard error so the register can only shrink or stay
//! honest — an allowlist that outlives its finding is how coverage rots.
//!
//! The workspace is offline (no `toml` crate), so this module implements
//! exactly the subset the register uses: `[[allow]]` array-of-tables with
//! basic `key = "string"` pairs, `#` comments, and standard backslash
//! escapes. [`to_toml`] is the inverse; a proptest pins the round-trip.

use std::fmt;

/// One committed exception.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AllowEntry {
    /// Rule id the exception applies to (`D1`..`D4`, `P1`).
    pub rule: String,
    /// Repo-relative path of the file (`crates/armci/src/engine.rs`).
    pub path: String,
    /// Substring of the offending source line; a finding in `path` for
    /// `rule` whose line contains `pattern` is suppressed.
    pub pattern: String,
    /// Why the site is allowed to stand. Must be non-trivial.
    pub justification: String,
}

/// Parse/validation error with a 1-based line number into the TOML text.
#[derive(Debug, PartialEq, Eq)]
pub struct AllowError {
    /// 1-based line in `lint_allow.toml` (0 = whole-file problem).
    pub line: u32,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for AllowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lint_allow.toml:{}: {}", self.line, self.msg)
    }
}

/// Minimum length for a justification to count as one — long enough that
/// "ok" or "legacy" can't slip through.
pub const MIN_JUSTIFICATION: usize = 15;

const KNOWN_RULES: [&str; 5] = ["D1", "D2", "D3", "D4", "P1"];

/// Parses the register. Returns every entry or the first error.
pub fn parse(text: &str) -> Result<Vec<AllowEntry>, AllowError> {
    let mut entries: Vec<AllowEntry> = Vec::new();
    let mut cur: Option<PartialEntry> = None;
    let mut cur_line = 0u32;
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx as u32 + 1;
        let line = strip_comment(raw).trim().to_string();
        if line.is_empty() {
            continue;
        }
        if line == "[[allow]]" {
            if let Some(p) = cur.take() {
                entries.push(p.finish(cur_line)?);
            }
            cur = Some(PartialEntry::default());
            cur_line = lineno;
            continue;
        }
        if line.starts_with('[') {
            return Err(AllowError {
                line: lineno,
                msg: format!("unknown table '{line}' (only [[allow]] is recognised)"),
            });
        }
        let (key, value) = parse_kv(&line, lineno)?;
        let Some(p) = cur.as_mut() else {
            return Err(AllowError {
                line: lineno,
                msg: format!("key '{key}' outside any [[allow]] table"),
            });
        };
        let slot = match key.as_str() {
            "rule" => &mut p.rule,
            "path" => &mut p.path,
            "pattern" => &mut p.pattern,
            "justification" => &mut p.justification,
            other => {
                return Err(AllowError {
                    line: lineno,
                    msg: format!("unknown key '{other}' (rule|path|pattern|justification)"),
                })
            }
        };
        if slot.is_some() {
            return Err(AllowError {
                line: lineno,
                msg: format!("duplicate key '{key}'"),
            });
        }
        *slot = Some(value);
    }
    if let Some(p) = cur.take() {
        entries.push(p.finish(cur_line)?);
    }
    Ok(entries)
}

/// Serializes entries back to the committed format. `parse(to_toml(e)) == e`
/// for every valid entry list (pinned by proptest).
pub fn to_toml(entries: &[AllowEntry]) -> String {
    let mut out = String::from(
        "# vt-lint exception register. Every entry must carry a justification;\n\
         # entries that no longer match a finding are a hard error (stale).\n",
    );
    for e in entries {
        out.push_str("\n[[allow]]\n");
        out.push_str(&format!("rule = \"{}\"\n", escape(&e.rule)));
        out.push_str(&format!("path = \"{}\"\n", escape(&e.path)));
        out.push_str(&format!("pattern = \"{}\"\n", escape(&e.pattern)));
        out.push_str(&format!(
            "justification = \"{}\"\n",
            escape(&e.justification)
        ));
    }
    out
}

#[derive(Default)]
struct PartialEntry {
    rule: Option<String>,
    path: Option<String>,
    pattern: Option<String>,
    justification: Option<String>,
}

impl PartialEntry {
    fn finish(self, line: u32) -> Result<AllowEntry, AllowError> {
        let need = |name: &str, v: Option<String>| {
            v.ok_or_else(|| AllowError {
                line,
                msg: format!("[[allow]] entry is missing '{name}'"),
            })
        };
        let entry = AllowEntry {
            rule: need("rule", self.rule)?,
            path: need("path", self.path)?,
            pattern: need("pattern", self.pattern)?,
            justification: need("justification", self.justification)?,
        };
        if !KNOWN_RULES.contains(&entry.rule.as_str()) {
            return Err(AllowError {
                line,
                msg: format!("unknown rule '{}' (D1|D2|D3|D4|P1)", entry.rule),
            });
        }
        if entry.pattern.trim().is_empty() {
            return Err(AllowError {
                line,
                msg: "pattern must be a non-empty line substring".into(),
            });
        }
        if entry.justification.trim().len() < MIN_JUSTIFICATION {
            return Err(AllowError {
                line,
                msg: format!(
                    "justification too short (< {MIN_JUSTIFICATION} chars): say *why* the \
                     site is safe, not that it is"
                ),
            });
        }
        Ok(entry)
    }
}

/// Strips a `#` comment, respecting `#` inside quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        match c {
            _ if escaped => escaped = false,
            '\\' if in_str => escaped = true,
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

/// Parses `key = "value"` with backslash escapes.
fn parse_kv(line: &str, lineno: u32) -> Result<(String, String), AllowError> {
    let Some((key, rest)) = line.split_once('=') else {
        return Err(AllowError {
            line: lineno,
            msg: format!("expected key = \"value\", got '{line}'"),
        });
    };
    let key = key.trim().to_string();
    let rest = rest.trim();
    let inner = rest
        .strip_prefix('"')
        .and_then(|r| r.strip_suffix('"'))
        .ok_or_else(|| AllowError {
            line: lineno,
            msg: format!("value for '{key}' must be a double-quoted string"),
        })?;
    // A trailing backslash would have escaped the closing quote we just
    // stripped; reject rather than mis-parse.
    let mut out = String::with_capacity(inner.len());
    let mut chars = inner.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            if c == '"' {
                return Err(AllowError {
                    line: lineno,
                    msg: format!("unescaped '\"' inside value for '{key}'"),
                });
            }
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('n') => out.push('\n'),
            Some('t') => out.push('\t'),
            Some('r') => out.push('\r'),
            Some('\\') => out.push('\\'),
            Some('"') => out.push('"'),
            other => {
                return Err(AllowError {
                    line: lineno,
                    msg: format!(
                        "bad escape '\\{}' in value for '{key}'",
                        other.unwrap_or(' ')
                    ),
                })
            }
        }
    }
    Ok((key, out))
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    fn entry() -> AllowEntry {
        AllowEntry {
            rule: "D4".into(),
            path: "crates/armci/src/engine.rs".into(),
            pattern: "0.8 * m.mean_interval_ns[idx]".into(),
            justification: "per-node scalar EWMA updated in deterministic event order".into(),
        }
    }

    #[test]
    fn round_trip_one_entry() {
        let e = vec![entry()];
        assert_eq!(parse(&to_toml(&e)).unwrap(), e);
    }

    #[test]
    fn round_trip_escapes() {
        let mut e = entry();
        e.pattern = "say \"hi\"\\path\nnewline\ttab".into();
        let e = vec![e];
        assert_eq!(parse(&to_toml(&e)).unwrap(), e);
    }

    #[test]
    fn missing_justification_is_an_error() {
        let toml = "[[allow]]\nrule = \"D1\"\npath = \"x.rs\"\npattern = \"y\"\n";
        let err = parse(toml).unwrap_err();
        assert!(err.msg.contains("missing 'justification'"), "{err}");
    }

    #[test]
    fn short_justification_is_an_error() {
        let toml = "[[allow]]\nrule = \"D1\"\npath = \"x.rs\"\npattern = \"y\"\n\
                    justification = \"ok\"\n";
        let err = parse(toml).unwrap_err();
        assert!(err.msg.contains("too short"), "{err}");
    }

    #[test]
    fn unknown_rule_and_key_are_errors() {
        let toml = "[[allow]]\nrule = \"D9\"\npath = \"x.rs\"\npattern = \"y\"\n\
                    justification = \"a long enough justification\"\n";
        assert!(parse(toml).unwrap_err().msg.contains("unknown rule"));
        let toml2 = "[[allow]]\nrle = \"D1\"\n";
        assert!(parse(toml2).unwrap_err().msg.contains("unknown key"));
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let text = format!("# header\n\n{}# trailing\n", to_toml(&[entry()]));
        assert_eq!(parse(&text).unwrap(), vec![entry()]);
    }

    #[test]
    fn hash_inside_value_is_not_a_comment() {
        let mut e = entry();
        e.justification = "issue #42 tracks the sharded-merge question".into();
        let e = vec![e];
        assert_eq!(parse(&to_toml(&e)).unwrap(), e);
    }
}
