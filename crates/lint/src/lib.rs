//! # vt-lint — workspace determinism & panic-policy static analyzer
//!
//! Every PR in this repo keeps one contract: byte-identical timelines,
//! golden snapshots, differential oracles. Until now that contract was
//! enforced only *dynamically* — by re-running and diffing. `vt-lint`
//! enforces it *statically*: it lexes every workspace source file and
//! turns the determinism discipline into named, machine-checked rules
//! (D1–D4) plus a panic-policy audit (P1), so an unordered `HashMap`
//! iteration or a stray wall-clock read fails the build before it can
//! silently break replay determinism across worker counts — exactly the
//! hazard class the sharded parallel engine (ROADMAP 1) will be exposed
//! to.
//!
//! The build environment is fully offline (no `syn`), so the analyzer
//! works on a hand-rolled token stream ([`lexer`]) rather than a full AST:
//! sound about what is code vs. comment/string, line-accurate, and
//! dependency-free. Exceptions live in the committed `lint_allow.toml`
//! ([`allowlist`]) with mandatory per-entry justifications; stale entries
//! are a hard error. Surfaced as `vtsim lint` and a blocking CI job, and
//! backed dynamically by scheduled Miri and ThreadSanitizer jobs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::unwrap_used, clippy::expect_used)]

pub mod allowlist;
pub mod lexer;
pub mod report;
pub mod rules;

pub use allowlist::{parse as parse_allowlist, to_toml, AllowEntry, AllowError};
pub use report::{Finding, LintReport};
pub use rules::{check_file, FileScope, RawFinding, Rule};

use std::path::{Path, PathBuf};

/// A fatal analyzer error (I/O, malformed allowlist, stale entries) — as
/// opposed to findings, which are reported, not thrown.
#[derive(Debug)]
pub enum LintError {
    /// Filesystem problem reading the workspace.
    Io(String),
    /// `lint_allow.toml` is malformed or has an invalid entry.
    Allowlist(String),
    /// Allowlist entries that matched no finding: the register has gone
    /// stale and must shrink.
    StaleAllow(Vec<AllowEntry>),
}

impl std::fmt::Display for LintError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LintError::Io(e) => write!(f, "i/o: {e}"),
            LintError::Allowlist(e) => write!(f, "allowlist: {e}"),
            LintError::StaleAllow(entries) => {
                writeln!(
                    f,
                    "stale lint_allow.toml entries (matched no finding — remove them):"
                )?;
                for e in entries {
                    writeln!(f, "  [{}] {} :: {:?}", e.rule, e.path, e.pattern)?;
                }
                Ok(())
            }
        }
    }
}

/// Classifies a repo-relative source path into the rule scopes that apply.
///
/// * Protocol paths (D1/D4): `crates/armci/src` and `crates/simnet/src`,
///   minus the reporting modules `metrics.rs` / `stats.rs` / `trace.rs`
///   (percentile and trace rendering legitimately use floats and ordered
///   output formatting).
/// * Sim crates (D2): `core`, `simnet`, `armci`, `analyze`, `apps`, `ga`.
///   `vt-bench` measures wall-clock time *by design* and the root CLI
///   parses `env::args`; both stay outside D2 (D3/P1 still apply there).
pub fn classify(rel_path: &str) -> FileScope {
    let p = rel_path.replace('\\', "/");
    let crate_name = p
        .strip_prefix("crates/")
        .and_then(|r| r.split('/').next())
        .unwrap_or(if p.starts_with("src/") { "root" } else { "" });
    let stem = p.rsplit('/').next().unwrap_or("");
    let reporting = matches!(stem, "metrics.rs" | "stats.rs" | "trace.rs");
    FileScope {
        protocol_path: matches!(crate_name, "armci" | "simnet") && !reporting,
        sim_crate: matches!(
            crate_name,
            "core" | "simnet" | "armci" | "analyze" | "apps" | "ga"
        ),
    }
}

/// Lints one file's source under an explicit scope, returning located
/// findings (used by the fixture selftests and [`lint_workspace`]).
pub fn lint_source(rel_path: &str, src: &str, scope: FileScope) -> Vec<Finding> {
    let lines: Vec<&str> = src.lines().collect();
    check_file(src, scope)
        .into_iter()
        .map(|raw| Finding {
            rule: raw.rule,
            path: rel_path.to_string(),
            line: raw.line,
            snippet: lines
                .get(raw.line as usize - 1)
                .map(|l| l.trim().to_string())
                .unwrap_or_default(),
            note: raw.note,
        })
        .collect()
}

/// Walks the workspace at `root` (every `crates/*/src/**/*.rs` plus the
/// root crate's `src/**/*.rs`; `vendor/`, `tests/`, and `examples/` are out
/// of scope), lints each file, and applies the allowlist at `allow_path`
/// (pass `None` for `<root>/lint_allow.toml`; a missing file means an
/// empty register).
pub fn lint_workspace(root: &Path, allow_path: Option<&Path>) -> Result<LintReport, LintError> {
    let default_allow = root.join("lint_allow.toml");
    let allow_path = allow_path.unwrap_or(&default_allow);
    let allow = match std::fs::read_to_string(allow_path) {
        Ok(text) => allowlist::parse(&text).map_err(|e| LintError::Allowlist(e.to_string()))?,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(LintError::Io(format!("{}: {e}", allow_path.display()))),
    };

    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        for member in sorted_dir(&crates_dir)? {
            let src = member.join("src");
            if src.is_dir() {
                collect_rs(&src, &mut files)?;
            }
        }
    }
    let root_src = root.join("src");
    if root_src.is_dir() {
        collect_rs(&root_src, &mut files)?;
    }
    files.sort();

    let mut report = LintReport {
        allow_entries: allow.len(),
        files_scanned: files.len(),
        ..Default::default()
    };
    let mut matched = vec![false; allow.len()];
    for path in &files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        let src = std::fs::read_to_string(path)
            .map_err(|e| LintError::Io(format!("{}: {e}", path.display())))?;
        for finding in lint_source(&rel, &src, classify(&rel)) {
            let hit = allow.iter().position(|a| {
                a.rule == finding.rule.id()
                    && a.path == finding.path
                    && finding.snippet.contains(&a.pattern)
            });
            match hit {
                Some(idx) => {
                    matched[idx] = true;
                    report.allowed.push(finding);
                }
                None => report.findings.push(finding),
            }
        }
    }
    let stale: Vec<AllowEntry> = allow
        .iter()
        .zip(&matched)
        .filter(|&(_, &m)| !m)
        .map(|(a, _)| a.clone())
        .collect();
    if !stale.is_empty() {
        return Err(LintError::StaleAllow(stale));
    }
    Ok(report)
}

/// Immediate subdirectories of `dir`, sorted by name for deterministic
/// walk order (the report must be byte-identical across filesystems).
fn sorted_dir(dir: &Path) -> Result<Vec<PathBuf>, LintError> {
    let mut out = Vec::new();
    let rd =
        std::fs::read_dir(dir).map_err(|e| LintError::Io(format!("{}: {e}", dir.display())))?;
    for entry in rd {
        let entry = entry.map_err(|e| LintError::Io(format!("{}: {e}", dir.display())))?;
        if entry.path().is_dir() {
            out.push(entry.path());
        }
    }
    out.sort();
    Ok(out)
}

/// Recursively collects `.rs` files under `dir`.
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), LintError> {
    let rd =
        std::fs::read_dir(dir).map_err(|e| LintError::Io(format!("{}: {e}", dir.display())))?;
    let mut entries: Vec<PathBuf> = Vec::new();
    for entry in rd {
        let entry = entry.map_err(|e| LintError::Io(format!("{}: {e}", dir.display())))?;
        entries.push(entry.path());
    }
    entries.sort();
    for p in entries {
        if p.is_dir() {
            collect_rs(&p, out)?;
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
    Ok(())
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn classification_matches_policy() {
        let engine = classify("crates/armci/src/engine.rs");
        assert!(engine.protocol_path && engine.sim_crate);
        let metrics = classify("crates/armci/src/metrics.rs");
        assert!(!metrics.protocol_path && metrics.sim_crate);
        let bench = classify("crates/bench/src/throughput.rs");
        assert!(!bench.protocol_path && !bench.sim_crate);
        let cli = classify("src/cli.rs");
        assert!(!cli.protocol_path && !cli.sim_crate);
        let core = classify("crates/core/src/graph.rs");
        assert!(!core.protocol_path && core.sim_crate);
    }

    #[test]
    fn lint_source_attaches_snippets() {
        let src = "fn f() { g().unwrap(); }\n";
        let f = lint_source("x.rs", src, FileScope::default());
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].snippet, "fn f() { g().unwrap(); }");
        assert_eq!(f[0].line, 1);
    }
}
