#!/usr/bin/env sh
# Static determinism & panic-policy gate.
#
# Rebuilds vtsim and runs the vt-lint analyzer over the whole workspace:
# unordered hash iteration in protocol paths (D1), ambient nondeterminism
# in sim crates (D2), randomness outside DetRng (D3), float accumulation
# in protocol state (D4), and the justified-panic audit (P1). Exceptions
# live in lint_allow.toml; stale entries are a hard error. Exits non-zero
# on any unallowlisted finding — the same gate CI's lint-determinism job
# enforces. The machine-readable report is left at target/lint_report.json.
#
# Usage: scripts/lint_determinism.sh [extra vtsim lint flags...]
# e.g.   scripts/lint_determinism.sh --format json
set -eu
cd "$(dirname "$0")/.."
cargo build --release --bin vtsim
./target/release/vtsim lint --root . --out target/lint_report.json "$@"
