#!/usr/bin/env sh
# Miri pass over the deterministic cores (vt-core, vt-simnet unit tests).
#
# Miri catches undefined behaviour and (with its weak-memory emulation)
# some ordering bugs that a native run never surfaces. The workspace
# forbids unsafe code, so this is a belt-and-braces job: it mostly guards
# the vendored shims and any future unsafe opt-ins. Runs on the nightly
# toolchain; if the miri component is not installed (e.g. in the offline
# dev container) the script reports and exits 0 so local runs degrade
# gracefully — CI's scheduled miri job installs the component for real.
#
# Usage: scripts/miri_sanity.sh [extra cargo-miri test flags...]
set -eu
cd "$(dirname "$0")/.."
if ! rustup component list --toolchain nightly 2>/dev/null \
    | grep -q '^miri.*(installed)'; then
  echo "miri: nightly component not installed; skipping (install with:" \
       "rustup +nightly component add miri)"
  exit 0
fi
# MIRIFLAGS: isolation stays ON (the sim must not read the host env);
# vt-core and vt-simnet are pure computation, so nothing needs -Zmiri-disable-isolation.
cargo +nightly miri test -p vt-core -p vt-simnet --lib "$@"
