#!/usr/bin/env sh
# ThreadSanitizer build of the parallel-sweep differential tests.
#
# The parallel sweep runner is the one place the workspace spawns threads;
# its determinism contract (byte-identical reports at --threads 1/3/4) is
# pinned by differential tests. TSan re-runs those tests with data-race
# detection enabled, catching unsynchronised access that a lucky schedule
# would hide. Needs nightly + rust-src (std is rebuilt instrumented); if
# either is missing (e.g. in the offline dev container) the script reports
# and exits 0 so local runs degrade gracefully — CI's scheduled tsan-sweep
# job installs both for real.
#
# Usage: scripts/tsan_sweep.sh [extra cargo test flags...]
set -eu
cd "$(dirname "$0")/.."
if ! rustup component list --toolchain nightly 2>/dev/null \
    | grep -q '^rust-src.*(installed)'; then
  echo "tsan: nightly rust-src not installed; skipping (install with:" \
       "rustup +nightly component add rust-src)"
  exit 0
fi
# The sweep runner's worker pool is the only threaded code; its serial-
# vs-parallel differential tests live in the vt-apps lib test suite.
host="$(rustc -vV | sed -n 's/^host: //p')"
RUSTFLAGS="-Zsanitizer=thread" \
  cargo +nightly test -Zbuild-std --target "$host" -p vt-apps --lib "$@"
