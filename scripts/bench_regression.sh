#!/usr/bin/env sh
# Simulator-throughput regression gate.
#
# Rebuilds vtsim and re-measures the quick bench cells (N = 1024 per
# topology, best of 5 repeats) against the committed BENCH_sim.json
# trajectory at the repo root. Exits non-zero when any cell falls more
# than 50% below the committed events/sec — the same gate CI's
# bench-smoke job enforces. The freshly measured document is left at
# target/bench_now.json for inspection or for updating the trajectory.
#
# Usage: scripts/bench_regression.sh [extra vtsim bench flags...]
# e.g.   scripts/bench_regression.sh --repeats 8
set -eu
cd "$(dirname "$0")/.."
cargo build --release --bin vtsim
./target/release/vtsim bench --quick \
  --baseline BENCH_sim.json \
  --out target/bench_now.json \
  "$@"
