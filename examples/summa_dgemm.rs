//! SUMMA-style distributed matrix multiply on the Global Arrays layer —
//! the classic GA workload (`ga_dgemm`). Each rank owns one block of C and,
//! for every step of the panel loop, *gets* a panel of A from its block row
//! and a panel of B from its block column, multiplies locally, and finally
//! accumulates its block of C. Panel gets concentrate on one block
//! row/column per step, so the traffic is bursty but not single-node-hot —
//! an intermediate regime between LU (neighbour-only) and the nxtval hot
//! spot.
//!
//! ```sh
//! cargo run --release --example summa_dgemm
//! ```

use armci_vt::prelude::*;
use vt_apps::{run_parallel, Table};
use vt_armci::Rank;

fn main() {
    let n_procs = 64u32;
    let n = 2048u64; // matrix extent
    let a = GlobalArray::create(n_procs, n, n, 8);
    let b = GlobalArray::create(n_procs, n, n, 8);
    let (px, py) = a.dist().grid();
    println!("SUMMA dgemm: {n}x{n} over {n_procs} ranks ({px}x{py} grid)");

    let jobs = vec![TopologyKind::Fcg, TopologyKind::Mfcg, TopologyKind::Cfcg];
    let outcomes = run_parallel(jobs.clone(), 0, |&kind| {
        let mut cfg = RuntimeConfig::new(n_procs, kind);
        cfg.procs_per_node = 4;
        let sim = Simulation::build(cfg, |rank| {
            // This rank's C block: rows of its A block row, cols of its B
            // block column.
            let my_block = a.block_of(rank);
            let mut calls = vec![GaCall::Sync];
            // Panel loop: one panel per grid column of A / grid row of B.
            for step in 0..px.max(py) {
                // A panel: my block rows x the step-th column block of A.
                let a_owner = Rank((step % py) * px + rank.0 % px);
                let a_panel = a.block_of(a_owner);
                calls.push(GaCall::Get(
                    a,
                    Patch::new(my_block.row0, my_block.rows, a_panel.col0, a_panel.cols),
                ));
                // B panel: the step-th row block of B x my block cols.
                let b_owner = Rank((rank.0 / px) * px + step % px);
                let b_panel = b.block_of(b_owner);
                calls.push(GaCall::Get(
                    b,
                    Patch::new(b_panel.row0, b_panel.rows, my_block.col0, my_block.cols),
                ));
                // Local dgemm on the panels.
                calls.push(GaCall::Compute(SimTime::from_micros(900)));
            }
            // Accumulate the finished C block (into a C array shaped like A).
            calls.push(GaCall::Acc(a, my_block));
            calls.push(GaCall::Sync);
            GaScript::new(calls)
        });
        sim.run().expect("SUMMA must not deadlock")
    });

    let mut table = Table::new(&["topology", "exec (ms)", "ops", "forwards", "stream misses"]);
    for (kind, report) in jobs.iter().zip(&outcomes) {
        table.row(&[
            kind.name().to_string(),
            format!("{:.2}", report.finish_time.as_secs_f64() * 1e3),
            report.metrics.total_ops().to_string(),
            report.cht_totals.forwarded.to_string(),
            report.net.stream_misses.to_string(),
        ]);
    }
    println!("{}", table.render());
    println!("Panel gets fan out across block rows/columns: enough spread that");
    println!("no BEER cliff appears, so FCG keeps a modest direct-path edge.");
}
