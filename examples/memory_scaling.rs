//! Memory-scaling study (the paper's Fig. 5 through the public API): how
//! the CHT request-buffer footprint of each virtual topology grows with
//! the job size.
//!
//! ```sh
//! cargo run --release --example memory_scaling
//! ```

use vt_apps::Table;
use vt_core::{MemoryModel, TopologyKind, VirtualTopology};

fn main() {
    let model = MemoryModel::default(); // the paper's setup: 12 ppn, B=16KiB, M=4
    let mut table = Table::new(&[
        "processes",
        "nodes",
        "fcg (MB)",
        "mfcg (MB)",
        "cfcg (MB)",
        "hypercube (MB)",
    ]);

    for nodes in [64u32, 128, 256, 512, 1024] {
        let procs = nodes * model.procs_per_node;
        let mut cells = vec![procs.to_string(), nodes.to_string()];
        for kind in TopologyKind::ALL {
            let topo = kind.build(nodes);
            let vmrss = model.master_vmrss_bytes(&topo, 0);
            cells.push(format!("{:.1}", vmrss as f64 / 1048576.0));
        }
        table.row(&cells);
    }
    println!("Master-process VmRSS by topology (base {} MB):", 612);
    println!("{}", table.render());

    // The asymptotics behind the numbers.
    println!("Buffer-pool growth (edges per node):");
    for kind in TopologyKind::ALL {
        let d64 = kind.build(64).out_degree(0);
        let d1024 = kind.build(1024).out_degree(0);
        println!(
            "  {:9}: 64 nodes -> {:4} edges, 1024 nodes -> {:4} edges ({}x for 16x nodes)",
            kind.name(),
            d64,
            d1024,
            d1024 / d64.max(1)
        );
    }
    println!("\nFCG scales linearly; MFCG as O(sqrt N); CFCG as O(cbrt N); Hypercube as O(log N).");
}
