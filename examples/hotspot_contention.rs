//! Hot-spot contention study: how each virtual topology behaves when a
//! fraction of the job hammers one process — a compact version of the
//! paper's Figs. 6/7 experiment.
//!
//! ```sh
//! cargo run --release --example hotspot_contention
//! ```

use vt_apps::contention::{run, ContentionConfig, OpSpec, Scenario};
use vt_apps::{run_parallel, Table};
use vt_core::TopologyKind;

fn main() {
    let scenarios = [Scenario::NoContention, Scenario::pct11(), Scenario::pct20()];
    let topologies = [TopologyKind::Fcg, TopologyKind::Mfcg, TopologyKind::Cfcg];

    let mut jobs = Vec::new();
    for t in topologies {
        for s in scenarios {
            jobs.push((t, s));
        }
    }
    println!(
        "running {} contention scenarios (1024 procs, fetch-&-add vs rank 0)...",
        jobs.len()
    );
    let outcomes = run_parallel(jobs.clone(), 0, |&(topology, scenario)| {
        let cfg = ContentionConfig {
            measure_stride: 16,
            ..ContentionConfig::paper(topology, OpSpec::fetch_add(), scenario)
        };
        run(&cfg)
    });

    let mut table = Table::new(&[
        "topology",
        "scenario",
        "mean (us)",
        "median (us)",
        "stream misses",
        "forwards",
    ]);
    for ((topology, scenario), o) in jobs.iter().zip(&outcomes) {
        table.row(&[
            topology.name().to_string(),
            scenario.label(),
            format!("{:.1}", o.mean_us()),
            format!("{:.1}", o.median_us()),
            o.stream_misses.to_string(),
            o.forwards.to_string(),
        ]);
    }
    println!("{}", table.render());

    let mean = |t, s| {
        jobs.iter()
            .zip(&outcomes)
            .find(|(&j, _)| j == (t, s))
            .map(|(_, o)| o.mean_us())
            .unwrap()
    };
    let fcg_collapse = mean(TopologyKind::Fcg, Scenario::pct20())
        / mean(TopologyKind::Fcg, Scenario::NoContention);
    let mfcg_gain =
        mean(TopologyKind::Fcg, Scenario::pct20()) / mean(TopologyKind::Mfcg, Scenario::pct20());
    println!(
        "FCG degrades {fcg_collapse:.0}x under 20% contention (paper: ~two orders of magnitude)."
    );
    println!("MFCG completes the hot-spot ops {mfcg_gain:.1}x faster than FCG at 20% contention.");
}
