//! Deadlock audit: executable evidence for the paper's central safety
//! claim — extended lowest-dimension-first forwarding is deadlock-free on
//! *any* number of nodes, including awkward partial populations.
//!
//! For a range of populations (primes included) this audit
//! 1. builds each topology's buffer-dependency graph from all-pairs LDF
//!    routes and checks it for cycles (the Dally/Seitz criterion), and
//! 2. runs an all-to-all CHT-path traffic storm through the simulator,
//!    whose buffer credits genuinely block — a cyclic order would deadlock
//!    and be reported, not hang.
//!
//! ```sh
//! cargo run --release --example deadlock_audit
//! ```

use vt_armci::{Action, Op, Rank, RuntimeConfig, Simulation};
use vt_core::{DependencyGraph, TopologyKind};

fn main() {
    let populations = [5u32, 7, 11, 13, 17, 23, 29, 31, 37, 41, 53, 64, 97];
    println!("population  topology  channels  dep-arcs  acyclic  storm");
    for &n in &populations {
        for kind in [TopologyKind::Mfcg, TopologyKind::Cfcg] {
            let topo = kind.build(n);
            let dep = DependencyGraph::from_topology(&topo);
            let acyclic = dep.is_deadlock_free();

            // All-to-all storm: every rank fires one accumulate at every
            // other rank, with only one buffer credit per sender to make
            // blocking maximally likely.
            let mut cfg = RuntimeConfig::new(n, kind);
            cfg.procs_per_node = 1;
            cfg.buffers_per_proc = 1;
            let sim = Simulation::build(cfg, |rank| {
                let mut targets: Vec<Rank> = (0..n).filter(|&t| t != rank.0).map(Rank).collect();
                let shift = rank.0 as usize % targets.len().max(1);
                targets.rotate_left(shift);
                let mut actions: Vec<Action> = targets
                    .into_iter()
                    .map(|t| Action::Op(Op::acc(t, 2048)))
                    .collect();
                actions.push(Action::Barrier);
                vt_armci::ScriptProgram::new(actions)
            });
            let storm = match sim.run() {
                Ok(report) => format!("ok ({} ops)", report.metrics.total_ops()),
                Err(e) => format!("DEADLOCK: {e}"),
            };
            println!(
                "{n:>10}  {:8}  {:>8}  {:>8}  {:>7}  {storm}",
                kind.name(),
                dep.channel_count(),
                dep.graph().edge_count(),
                acyclic,
            );
            assert!(acyclic, "dependency cycle found for {kind} over {n} nodes");
        }
    }
    println!("\nAll populations pass: LDF's monotone dimension order leaves no cycle,");
    println!("and the extension to partial populations preserves it (paper SIV-B).");
}
