//! Quickstart: build virtual topologies, route requests, inspect the
//! resource graph, and run a small simulated ARMCI job.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use armci_vt::prelude::*;
use vt_armci::{Action, Op, Rank, ScriptProgram};

fn main() {
    // --- 1. Virtual topologies are directed graphs of buffer allocation ---
    // 1 024 nodes as a 32x32 meshed fully connected graph: each node keeps
    // request buffers for 62 peers instead of 1 023.
    let mfcg = Mfcg::new(1024);
    println!(
        "MFCG over {} nodes: shape {:?}",
        mfcg.num_nodes(),
        mfcg.shape().dims()
    );
    println!("  out-degree(node 0) = {}", mfcg.out_degree(0));

    // Lowest-dimension-first forwarding: node 1023 reaches node 0 in two
    // hops, via its column neighbour.
    let route = mfcg.route(1023, 0);
    println!("  LDF route 1023 -> 0: {route:?}");

    // The request-path tree rooted at a hot node shows the contention
    // attenuation: only 62 nodes hit node 0 directly (vs 1 023 under FCG).
    let tree = RequestTree::build(&mfcg, 0);
    println!(
        "  request tree at node 0: height {}, direct fan-in {}",
        tree.height(),
        tree.root_fan_in()
    );

    // --- 2. The memory model behind Fig. 5 ---
    let model = MemoryModel::default(); // 12 ppn, 16-KiB buffers, M = 4
    for kind in TopologyKind::ALL {
        let topo = kind.build(1024);
        println!(
            "  {:9}: CHT pool {:7.1} MB, master VmRSS {:7.1} MB",
            kind.name(),
            model.cht_pool_bytes(&topo, 0) as f64 / 1048576.0,
            model.master_vmrss_bytes(&topo, 0) as f64 / 1048576.0,
        );
    }

    // --- 3. Run a tiny simulated job ---
    // 32 ranks, 4 per node, over MFCG; every rank vector-puts to rank 0
    // once, then everyone synchronises.
    let mut cfg = RuntimeConfig::new(32, TopologyKind::Mfcg);
    cfg.record_ops = true;
    let sim = Simulation::build(cfg, |rank| {
        if rank == Rank(0) {
            ScriptProgram::new(vec![Action::Barrier])
        } else {
            ScriptProgram::new(vec![
                Action::Op(Op::put_v(Rank(0), 8, 1024)),
                Action::Barrier,
            ])
        }
    });
    let report = sim.run().expect("deadlock-free by LDF construction");
    println!(
        "\nSimulated job: {} ops in {}, {} forwarded, {} stream misses",
        report.metrics.total_ops(),
        report.finish_time,
        report.cht_totals.forwarded,
        report.net.stream_misses,
    );
    for (rank, stats) in report.metrics.per_rank.iter().enumerate().take(5) {
        if stats.ops > 0 {
            println!(
                "  rank {rank}: mean op latency {:.1} us",
                stats.latency_us.mean()
            );
        }
    }
}
