//! NWChem proxies: the DFT hot-spot workload and the memory-bound CCSD
//! workload, side by side (compact Fig. 9).
//!
//! ```sh
//! cargo run --release --example nwchem_proxy
//! ```

use vt_apps::nwchem_ccsd::{self, CcsdConfig};
use vt_apps::nwchem_dft::{self, DftConfig};
use vt_apps::{run_parallel, Table};
use vt_core::TopologyKind;

fn main() {
    // --- DFT: dynamic load balancing over a shared nxtval counter --------
    println!("DFT SiOSi3 proxy (hot-spot nxtval counter), scaled-down problem:");
    let topologies = [
        TopologyKind::Fcg,
        TopologyKind::Mfcg,
        TopologyKind::Hypercube,
    ];
    let cores = 3072u32;
    let outcomes = run_parallel(topologies.to_vec(), 0, |&topology| {
        let mut cfg = DftConfig::siosi3(cores, topology);
        cfg.total_tasks = 60_000;
        nwchem_dft::run(&cfg)
    });
    let mut table = Table::new(&["topology", "exec (s)", "stream misses", "forwards"]);
    for (t, o) in topologies.iter().zip(&outcomes) {
        table.row(&[
            t.name().to_string(),
            format!("{:.1}", o.exec_seconds),
            o.stream_misses.to_string(),
            o.forwards.to_string(),
        ]);
    }
    println!("{}", table.render());

    // --- CCSD: no hot spot, but FCG's buffers can blow the memory budget --
    println!("CCSD(T) water proxy (memory pressure), scaled-down problem:");
    let mut table = Table::new(&["cores", "topology", "exec (s)", "paging", "node mem (GiB)"]);
    for cores in [2004u32, 9996, 14004] {
        for topology in [TopologyKind::Fcg, TopologyKind::Mfcg] {
            let mut cfg = CcsdConfig::water(cores, topology);
            cfg.serial_seconds /= 20.0;
            cfg.fixed_seconds_per_proc /= 20.0;
            let o = nwchem_ccsd::run(&cfg);
            table.row(&[
                cores.to_string(),
                topology.name().to_string(),
                format!("{:.1}", o.exec_seconds),
                format!("{:.2}", o.paging_factor),
                format!("{:.2}", o.node_mem_used as f64 / (1u64 << 30) as f64),
            ]);
        }
    }
    println!("{}", table.render());
    println!("FCG pages once its O(N) buffer pools push the node over budget;");
    println!("MFCG's O(sqrt N) pools leave that memory to the application.");
}
