//! Global Arrays layer demo: a distributed matrix transpose — every rank
//! pulls the transposed image of its block from the scattered owners and
//! accumulates a correction back. This is the access pattern (patch get +
//! accumulate over block-distributed arrays) that NWChem-style GA programs
//! generate, and the reason their traffic rides ARMCI's CHT path through
//! the virtual topology.
//!
//! ```sh
//! cargo run --release --example global_arrays
//! ```

use armci_vt::prelude::*;
use vt_apps::Table;
use vt_ga::calls::nxtval;

fn main() {
    let n_procs = 64u32;
    let ga = GlobalArray::create(n_procs, 2048, 2048, 8);
    println!(
        "GA: 2048x2048 f64 over {n_procs} ranks, grid {:?}, block {}x{}",
        ga.dist().grid(),
        ga.block_of(vt_armci::Rank(0)).rows,
        ga.block_of(vt_armci::Rank(0)).cols,
    );

    let mut table = Table::new(&["topology", "exec (ms)", "forwards", "ops"]);
    for kind in [TopologyKind::Fcg, TopologyKind::Mfcg, TopologyKind::Cfcg] {
        let mut cfg = RuntimeConfig::new(n_procs, kind);
        cfg.procs_per_node = 4;
        let sim = Simulation::build(cfg, |rank| {
            // The transpose of my block lives at the mirrored grid position.
            let mine = ga.block_of(rank);
            let transposed = Patch::new(mine.col0, mine.cols, mine.row0, mine.rows);
            GaScript::new(vec![
                GaCall::Sync,
                nxtval(), // task-counter tick, as GA programs do
                GaCall::Get(ga, transposed),
                GaCall::Compute(SimTime::from_micros(500)),
                GaCall::Acc(ga, transposed),
                GaCall::Sync,
            ])
        });
        let report = sim.run().expect("transpose must not deadlock");
        table.row(&[
            kind.name().to_string(),
            format!("{:.2}", report.finish_time.as_secs_f64() * 1e3),
            report.cht_totals.forwarded.to_string(),
            report.metrics.total_ops().to_string(),
        ]);
    }
    println!("{}", table.render());
    println!("Patch accesses decompose into vectored one-sided ops per owner;");
    println!("the virtual topology decides which of those need forwarding.");
}
