//! NAS LU proxy across virtual topologies (compact Fig. 8): a
//! neighbour-exchange workload with no hot spot, where all topologies
//! should perform comparably.
//!
//! ```sh
//! cargo run --release --example lu_wavefront
//! ```

use vt_apps::lu::{process_grid, run, LuConfig};
use vt_apps::{run_parallel, Table};
use vt_core::TopologyKind;

fn main() {
    let proc_counts = [192u32, 768];
    let mut jobs = Vec::new();
    for t in TopologyKind::ALL {
        for &p in &proc_counts {
            jobs.push((t, p));
        }
    }
    println!("NAS LU proxy, 50 SSOR time steps, strong scaling:");
    let outcomes = run_parallel(jobs.clone(), 0, |&(topology, procs)| {
        let cfg = LuConfig {
            iterations: 50,
            ..LuConfig::class_c(procs, topology)
        };
        run(&cfg)
    });

    let mut table = Table::new(&[
        "procs",
        "grid",
        "topology",
        "exec (s)",
        "forwarded faces",
        "stream misses",
    ]);
    for ((topology, procs), o) in jobs.iter().zip(&outcomes) {
        let (px, py) = process_grid(*procs);
        table.row(&[
            procs.to_string(),
            format!("{px}x{py}"),
            topology.name().to_string(),
            format!("{:.1}", o.exec_seconds),
            format!("{:.1}%", o.forward_fraction * 100.0),
            o.stream_misses.to_string(),
        ]);
    }
    println!("{}", table.render());
    println!("No hot spot: the topologies stay within a few percent of each other,");
    println!("even though MFCG/CFCG forward part of the face exchanges.");
}
