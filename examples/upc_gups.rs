//! UPC-style fine-grained random access (GUPS) across virtual topologies —
//! the paper's §VIII future-work question about PGAS languages.
//!
//! ```sh
//! cargo run --release --example upc_gups
//! ```

use vt_apps::gups::{run, GupsConfig};
use vt_apps::{run_parallel, Table};
use vt_core::TopologyKind;

fn main() {
    let n_procs = 256u32;
    let skews = [0.0, 0.5, 0.9];
    let topologies = [TopologyKind::Fcg, TopologyKind::Mfcg, TopologyKind::Cfcg];

    let mut jobs = Vec::new();
    for &skew in &skews {
        for t in topologies {
            jobs.push((skew, t));
        }
    }
    println!("GUPS: {n_procs} ranks, 64 random 8-byte remote accumulates each");
    let outcomes = run_parallel(jobs.clone(), 0, |&(skew, topology)| {
        run(&GupsConfig::skewed(n_procs, topology, skew))
    });

    let mut table = Table::new(&[
        "skew to rank0",
        "topology",
        "mean update (us)",
        "GUPS (x1e-3)",
    ]);
    for ((skew, topology), o) in jobs.iter().zip(&outcomes) {
        table.row(&[
            format!("{:.0}%", skew * 100.0),
            topology.name().to_string(),
            format!("{:.1}", o.mean_update_us),
            format!("{:.3}", o.gups * 1e3),
        ]);
    }
    println!("{}", table.render());
    println!("Uniform fine-grained access favours FCG's direct path; once the");
    println!("access distribution grows a hot spot, the virtual topologies win —");
    println!("the same trade-off the paper measures for ARMCI applications.");
}
