//! Property-based tests of survivor re-packing: for random populations and
//! random crash sets, `repack` must be deterministic (and independent of
//! the order the crashes were reported in), produce a dense bijective slot
//! map in ascending physical order, bound its fall down the dimension
//! ladder, and yield a grid whose LDF routing is total and depth-bounded
//! over every live pair — plus `vt-analyze` must certify the repaired
//! topology (acyclic dependency graph) exactly as the live repair path
//! does.
//!
//! A regression pair pins the PR's headline behaviour: the MFCG/23
//! boundary-victim crash (node 2, escape-critical) is still *refused* by
//! the static analyzer, yet completes under membership repair.

use proptest::prelude::*;
use vt_core::{fallback_ladder, repack, repack_with, TopologyKind, VirtualTopology};

/// One random repack scenario: a population, a crash set, and the original
/// topology kind.
#[derive(Clone, Debug)]
struct RepackSpec {
    kind: TopologyKind,
    n_total: u32,
    dead: Vec<u32>,
}

/// Derives a crash set from a seed: each node dies with probability
/// `frac/100`, but at least one survivor is always kept (the shim has no
/// collection strategies, so the subset is expanded from the seed by a
/// splitmix step per node).
fn crash_set(n_total: u32, seed: u64, frac: u32) -> Vec<u32> {
    let mut dead = Vec::new();
    let mut s = seed;
    for node in 0..n_total {
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        if (s >> 33) % 100 < u64::from(frac) {
            dead.push(node);
        }
    }
    if dead.len() as u32 == n_total {
        dead.pop();
    }
    dead
}

fn spec_strategy() -> impl Strategy<Value = RepackSpec> {
    (
        prop_oneof![
            Just(TopologyKind::Fcg),
            Just(TopologyKind::Mfcg),
            Just(TopologyKind::Cfcg),
            Just(TopologyKind::Hypercube),
            Just(TopologyKind::KFcg(3)),
        ],
        2u32..=64,
        any::<u64>(),
        0u32..60,
    )
        .prop_map(|(kind, n_total, seed, frac)| RepackSpec {
            kind,
            n_total,
            dead: crash_set(n_total, seed, frac),
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Re-packing is deterministic and independent of the order the dead
    /// set was reported in, and the slot map is a dense bijection over the
    /// survivors in ascending physical order.
    #[test]
    fn repack_is_deterministic_and_order_independent(spec in spec_strategy()) {
        let a = repack(spec.kind, spec.n_total, &spec.dead).unwrap();
        let mut reversed = spec.dead.clone();
        reversed.reverse();
        // Duplicate reports must not change the outcome either.
        let mut doubled = reversed.clone();
        doubled.extend_from_slice(&spec.dead);
        let b = repack(spec.kind, spec.n_total, &doubled).unwrap();
        prop_assert_eq!(a.kind(), b.kind());
        prop_assert_eq!(a.fallback_depth(), b.fallback_depth());
        prop_assert_eq!(a.num_live(), b.num_live());
        prop_assert_eq!(
            a.num_live() as usize,
            spec.n_total as usize - {
                let mut d = spec.dead.clone();
                d.sort_unstable();
                d.dedup();
                d.len()
            }
        );
        let mut prev: Option<u32> = None;
        for slot in 0..a.num_live() {
            let node = a.node_of(slot);
            prop_assert_eq!(b.node_of(slot), node);
            prop_assert_eq!(a.slot_of(node), Some(slot));
            prop_assert!(!spec.dead.contains(&node));
            // Ascending physical order => dense LDF renumbering.
            prop_assert!(prev.is_none_or(|p| p < node));
            prev = Some(node);
        }
        for &d in &spec.dead {
            prop_assert_eq!(a.slot_of(d), None);
        }
    }

    /// The committed rung's LDF routing is total and depth-bounded over
    /// every live pair: each route ends at its destination in at most
    /// `ndims` hops.
    #[test]
    fn repacked_routing_is_total_and_depth_bounded(spec in spec_strategy()) {
        let p = repack(spec.kind, spec.n_total, &spec.dead).unwrap();
        let grid = p.grid();
        let ndims = grid.shape().ndims();
        for src in 0..p.num_live() {
            for dst in 0..p.num_live() {
                let route = grid.route(src, dst);
                if src == dst {
                    prop_assert!(route.is_empty());
                } else {
                    prop_assert_eq!(route.last().copied(), Some(dst));
                    prop_assert!(
                        route.len() <= ndims,
                        "route {}->{} took {} hops over {:?}",
                        src, dst, route.len(), grid.shape()
                    );
                }
            }
        }
    }

    /// The fall down the ladder is bounded by the ladder's length, the
    /// committed rung really supports the survivor count, and rejecting
    /// every rung surfaces as an error instead of an uncertified commit.
    #[test]
    fn fallback_depth_is_bounded_and_rungs_support_survivors(spec in spec_strategy()) {
        let ladder = fallback_ladder(spec.kind);
        let p = repack(spec.kind, spec.n_total, &spec.dead).unwrap();
        prop_assert!((p.fallback_depth() as usize) < ladder.len());
        prop_assert_eq!(ladder[p.fallback_depth() as usize], p.kind());
        prop_assert!(p.kind().supports(p.num_live()));
        prop_assert_eq!(p.original_kind(), spec.kind);
        // Every rung above the committed one was genuinely unusable.
        for rung in &ladder[..p.fallback_depth() as usize] {
            prop_assert!(!rung.supports(p.num_live()));
        }
        prop_assert!(
            repack_with(spec.kind, spec.n_total, &spec.dead, |_, _| Err("no".into())).is_err()
        );
    }

    /// Every survivor packing the built-in ladder commits is certified by
    /// `vt-analyze` — acyclic dependency graph, total routing — exactly as
    /// the engine's live repair certifier demands.
    #[test]
    fn repacked_topologies_are_certified_by_the_analyzer(spec in spec_strategy()) {
        let p = repack_with(spec.kind, spec.n_total, &spec.dead, vt_analyze::certify_repair)
            .unwrap();
        prop_assert!(vt_analyze::certify_repair(p.kind(), p.num_live()).is_ok());
    }
}

/// The PR's headline regression, pinned both ways: the static analyzer
/// still refuses the escape-critical MFCG/23 node-2 crash (PR 3's pin),
/// while the same crash under membership repair completes every surviving
/// rank with zero credit leaks and a certified post-repair topology.
#[test]
fn mfcg_boundary_victim_static_refusal_and_live_repair_coexist() {
    let cfg = vt_apps::RepairScenarioConfig::mfcg_boundary();
    let o = vt_apps::repair::run(&cfg);
    assert!(o.static_refusal, "PR 3 static pin must keep holding: {o:?}");
    assert!(o.completed, "{o:?}");
    assert_eq!(o.credit_leaks, 0, "{o:?}");
    assert!(o.post_repair_certified, "{o:?}");
    assert!(o.repair.epoch_bumps >= 1, "{o:?}");
}
