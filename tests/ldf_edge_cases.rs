//! Edge cases of extended LDF routing and the coalescing envelope bound:
//! the degenerate one-node mesh, partially populated meshes and cubes at
//! every packing boundary, the hypercube's power-of-two restriction, and
//! envelope splitting exactly at the byte budget.

use vt_armci::{
    Action, CoalesceConfig, Op, Rank, Report, RuntimeConfig, ScriptProgram, SimTime, Simulation,
};
use vt_core::{ldf, Shape, TopologyKind, VirtualTopology};

// ---- One-node topologies ------------------------------------------------

#[test]
fn one_node_mesh_is_degenerate_but_valid() {
    for kind in [TopologyKind::Mfcg, TopologyKind::Cfcg, TopologyKind::Fcg] {
        assert!(kind.supports(1), "{kind:?}");
        let topo = kind.build(1);
        assert_eq!(topo.num_nodes(), 1);
        assert_eq!(topo.out_degree(0), 0);
        assert_eq!(topo.next_hop(0, 0), None);
        assert!(topo.route(0, 0).is_empty());
    }
}

#[test]
fn one_node_simulation_stays_on_the_shared_memory_path() {
    // Four ranks on the single node of a 1-node MFCG: all traffic is
    // node-local, so the CHT never forwards and nothing crosses the wire.
    let mut cfg = RuntimeConfig::new(4, TopologyKind::Mfcg);
    cfg.procs_per_node = 4;
    let report = Simulation::build(cfg, |rank| {
        ScriptProgram::new(if rank == Rank(0) {
            vec![]
        } else {
            vec![Action::Op(Op::fetch_add(Rank(0), 1))]
        })
    })
    .run()
    .expect("one-node run completes");
    assert_eq!(report.metrics.total_ops(), 3);
    assert_eq!(report.fetch_finals[0], 3);
    assert_eq!(report.cht_totals.forwarded, 0);
}

// ---- Partial packing boundaries -----------------------------------------

/// Populations straddling every mesh/cube packing boundary: one past a
/// perfect square/cube, one short of the next, and the perfect fills.
const BOUNDARY_POPULATIONS: [u32; 11] = [2, 3, 5, 9, 10, 16, 17, 25, 26, 27, 28];

#[test]
fn partial_meshes_and_cubes_route_every_pair() {
    for kind in [TopologyKind::Mfcg, TopologyKind::Cfcg] {
        for n in BOUNDARY_POPULATIONS {
            let topo = kind.build(n);
            let shape = topo.shape();
            assert!(
                shape.capacity() >= u64::from(n),
                "{kind:?}/{n}: shape {:?} too small",
                shape.dims()
            );
            for src in 0..n {
                for dest in 0..n {
                    let route = topo.route(src, dest);
                    if src == dest {
                        assert!(route.is_empty());
                        continue;
                    }
                    // The route ends at the destination, stays inside the
                    // population, and never exceeds the dimensionality.
                    assert_eq!(route.last(), Some(&dest), "{kind:?}/{n} {src}->{dest}");
                    assert!(route.iter().all(|&h| h < n), "{kind:?}/{n} {src}->{dest}");
                    assert!(route.len() <= shape.ndims(), "{kind:?}/{n} {src}->{dest}");
                    // Every hop is a real edge: one coordinate changes.
                    let mut cur = src;
                    for &hop in &route {
                        let a = shape.coord_of(cur);
                        let b = shape.coord_of(hop);
                        let changed = (0..shape.ndims()).filter(|&d| a.get(d) != b.get(d)).count();
                        assert_eq!(changed, 1, "{kind:?}/{n}: {cur}->{hop} not an edge");
                        cur = hop;
                    }
                }
            }
        }
    }
}

#[test]
fn fully_populated_routes_fix_dimensions_lowest_first() {
    // Without a partial top slice, extended LDF degenerates to plain LDF:
    // the dimension fixed by each hop strictly increases along a route.
    let topo = TopologyKind::Cfcg.build(27);
    let shape = topo.shape();
    for src in 0..27 {
        for dest in 0..27 {
            let mut cur = src;
            let mut last_dim = None;
            for hop in topo.route(src, dest) {
                let a = shape.coord_of(cur);
                let b = shape.coord_of(hop);
                let dim = (0..shape.ndims())
                    .find(|&d| a.get(d) != b.get(d))
                    .expect("hop changes a coordinate");
                assert!(
                    last_dim < Some(dim),
                    "{src}->{dest}: dim {dim} after {last_dim:?}"
                );
                last_dim = Some(dim);
                cur = hop;
            }
        }
    }
}

// ---- Hypercube power-of-two restriction ---------------------------------

#[test]
fn non_power_of_two_hypercubes_are_rejected_everywhere() {
    assert!(!TopologyKind::Hypercube.supports(12));
    assert!(Shape::hypercube_for(12).is_none());
    assert!(TopologyKind::Hypercube.try_build(12).is_err());
    // The infallible constructor panics rather than building a broken grid.
    let panicked = std::panic::catch_unwind(|| TopologyKind::Hypercube.build(12)).is_err();
    assert!(panicked);
    // The boundary itself is fine.
    assert!(TopologyKind::Hypercube.supports(16));
    assert_eq!(TopologyKind::Hypercube.build(16).num_nodes(), 16);
}

#[test]
fn ldf_panics_on_out_of_population_nodes() {
    let shape = Shape::mesh_for(10);
    assert!(std::panic::catch_unwind(|| ldf::next_hop(&shape, 10, 10, 0)).is_err());
    assert!(std::panic::catch_unwind(|| ldf::next_hop(&shape, 10, 0, 11)).is_err());
}

// ---- Envelope splitting at the byte budget ------------------------------

/// Ranks 7 and 8 burst async fetch-&-adds at rank 0 through forwarder
/// node 6 of the 3x3 MFCG — the coalescable hot-spot pattern.
fn hotspot(rank: Rank) -> ScriptProgram {
    if rank == Rank(7) || rank == Rank(8) {
        let mut script = vec![Action::Compute(SimTime::from_millis(1))];
        script.extend((0..6).map(|_| Action::OpAsync(Op::fetch_add(Rank(0), 1))));
        script.push(Action::WaitAll);
        ScriptProgram::new(script)
    } else {
        ScriptProgram::new(vec![])
    }
}

fn run_hotspot(max_bytes: u64) -> Report {
    let mut cfg = RuntimeConfig::new(9, TopologyKind::Mfcg);
    cfg.procs_per_node = 1;
    cfg.coalesce = CoalesceConfig {
        max_bytes: Some(max_bytes),
        ..CoalesceConfig::on()
    };
    Simulation::build(cfg, hotspot).run().expect("completes")
}

#[test]
fn envelope_splits_exactly_at_the_byte_boundary() {
    let rb = Op::fetch_add(Rank(0), 1).request_bytes();
    let sub = RuntimeConfig::new(9, TopologyKind::Mfcg).net.env_sub_header;
    // Budget for exactly three members: wire bytes are 3*rb plus one
    // sub-header per member after the first.
    let exact = 3 * rb + 2 * sub;
    let at = run_hotspot(exact);
    assert!(at.coalesce.envelopes >= 1, "{:?}", at.coalesce);
    assert_eq!(at.coalesce.deepest_fold, 3, "{:?}", at.coalesce);
    assert!(at.coalesce.largest_envelope <= 3 * rb);
    // One byte less and a three-member envelope must never form.
    let under = run_hotspot(exact - 1);
    assert!(under.coalesce.deepest_fold <= 2, "{:?}", under.coalesce);
    // The split changes packaging only, never semantics.
    assert_eq!(at.fetch_finals[0], 12);
    assert_eq!(under.fetch_finals[0], 12);
    assert_eq!(at.cht_totals.forwarded, under.cht_totals.forwarded);
}
