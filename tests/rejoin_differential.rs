//! Differential tests of transient-fault recovery: a crash→rejoin cycle
//! ends in exactly the state the unfaulted run reaches (every operation
//! applied once, full availability, original topology at fallback depth
//! 0), the envelope checksum catches every corrupted frame the network
//! delivers — under plain requests and under coalescing — and the whole
//! stack composes with the PR 4 boundary scenarios whose victims static
//! route-around provably cannot survive.

use proptest::prelude::*;
use vt_armci::{
    Action, CoalesceConfig, FaultPlan, MembershipConfig, Op, Rank, Report, RuntimeConfig,
    ScriptProgram, SimTime, Simulation,
};
use vt_core::TopologyKind;

/// A boundary scenario: the topology, population and victim node of the
/// PR 4 escape-critical pins.
#[derive(Clone, Copy)]
struct Scenario {
    kind: TopologyKind,
    nodes: u32,
    ppn: u32,
    victim: u32,
}

/// MFCG 5x5 grid, 23 populated: node 2 is the sole escape hop between
/// (3,0) and (2,4).
const MFCG_BOUNDARY: Scenario = Scenario {
    kind: TopologyKind::Mfcg,
    nodes: 23,
    ppn: 2,
    victim: 2,
};

/// CFCG 4x3x3 grid, 29 populated: node 24 is the sole in-slice forwarder
/// toward (0,1,2).
const CFCG_BOUNDARY: Scenario = Scenario {
    kind: TopologyKind::Cfcg,
    nodes: 29,
    ppn: 2,
    victim: 24,
};

fn config(s: &Scenario, coalesce: bool) -> RuntimeConfig {
    let mut cfg = RuntimeConfig::new(s.nodes * s.ppn, s.kind);
    cfg.procs_per_node = s.ppn;
    cfg.membership = MembershipConfig::on();
    if coalesce {
        cfg.coalesce = CoalesceConfig::on();
    }
    cfg
}

/// The hot-spot workload split around a long keep-alive compute, so the
/// run is still in progress when the crash, the repair epoch, the reboot
/// and the grow-back epoch all land.
fn run(s: &Scenario, plan: &FaultPlan, coalesce: bool) -> Report {
    let hot = Rank((s.nodes - 1) * s.ppn);
    Simulation::build_with_faults(
        config(s, coalesce),
        move |rank| {
            let mut script = Vec::new();
            if rank != hot {
                script.push(Action::Compute(SimTime::from_micros(
                    2 + u64::from(rank.0 % 7),
                )));
                for _ in 0..2 {
                    script.push(Action::Op(Op::fetch_add(hot, 1)));
                }
                script.push(Action::Compute(SimTime::from_millis(40)));
                for _ in 0..2 {
                    script.push(Action::Op(Op::fetch_add(hot, 1)));
                }
            }
            ScriptProgram::new(script)
        },
        plan,
    )
    .with_repair_certifier(vt_analyze::certify_repair)
    .run()
    .expect("membership runs must repair or diagnose, never hang")
}

fn crash_rejoin_plan(s: &Scenario) -> FaultPlan {
    FaultPlan::new()
        .crash_node(SimTime::from_micros(50), s.victim)
        .restart_node(SimTime::from_millis(15), s.victim)
}

/// Asserts the faulted run ended in the unfaulted run's final state: same
/// hot-counter value, same completed-op count, nothing lost, nothing
/// failed, nothing leaked — and the view grew back to the original kind.
fn assert_rejoin_matches_unfaulted(s: &Scenario, coalesce: bool) {
    let unfaulted = run(s, &FaultPlan::default(), coalesce);
    let faulted = run(s, &crash_rejoin_plan(s), coalesce);

    assert!(faulted.failures.is_empty(), "{:?}", faulted.failures);
    assert!(faulted.lost_ranks.is_empty(), "{:?}", faulted.lost_ranks);
    assert_eq!(faulted.availability(), 1.0);
    assert_eq!(faulted.credit_leaks, 0);
    assert_eq!(faulted.fetch_finals, unfaulted.fetch_finals);
    assert_eq!(faulted.metrics.total_ops(), unfaulted.metrics.total_ops());
    // Crash repair plus grow-back, never a fallback rung: the rejoined
    // view is the original kind re-packed over the full population.
    assert_eq!(faulted.repair.rejoins_committed, 1, "{:?}", faulted.repair);
    assert_eq!(faulted.repair.epoch_bumps, 2, "{:?}", faulted.repair);
    assert_eq!(faulted.repair.fallback_depth, 0, "{:?}", faulted.repair);
    // The unfaulted reference saw no membership activity at all.
    assert_eq!(unfaulted.repair.epoch_bumps, 0);
}

#[test]
fn mfcg_boundary_crash_rejoin_matches_unfaulted_final_state() {
    assert_rejoin_matches_unfaulted(&MFCG_BOUNDARY, false);
}

#[test]
fn cfcg_boundary_crash_rejoin_matches_unfaulted_final_state() {
    assert_rejoin_matches_unfaulted(&CFCG_BOUNDARY, false);
}

/// The rejoin protocol composes with request coalescing: envelopes carry
/// the retransmissions and the grow-back traffic, and the final state
/// still matches the unfaulted run.
#[test]
fn crash_rejoin_composes_with_coalescing() {
    assert_rejoin_matches_unfaulted(&MFCG_BOUNDARY, true);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// Every corruption is detected or harmless: whatever the corruption
    /// probability, window and seed, the engine's checksum counter equals
    /// the network's corruption counter exactly, effects stay
    /// exactly-once, and any terminal failure carries a diagnostic.
    #[test]
    fn every_corruption_is_detected_or_harmless(
        seed in any::<u64>(),
        p_pct in 1u32..31,
        until_us in 500u64..8_000,
        coalesce in any::<bool>(),
    ) {
        let mut cfg = RuntimeConfig::new(16, TopologyKind::Mfcg);
        cfg.procs_per_node = 2;
        cfg.seed = seed;
        if coalesce {
            cfg.coalesce = CoalesceConfig::on();
        }
        let plan = FaultPlan::new().corrupt_window(
            SimTime::ZERO,
            SimTime::from_micros(until_us),
            f64::from(p_pct) / 100.0,
        );
        let ops_per_rank = 4u32;
        let report = Simulation::build_with_faults(
            cfg,
            move |rank| {
                let mut script = Vec::new();
                if rank != Rank(0) {
                    script.push(Action::Compute(SimTime::from_micros(
                        1 + u64::from(rank.0 % 5),
                    )));
                    for _ in 0..ops_per_rank {
                        script.push(Action::Op(Op::fetch_add(Rank(0), 1)));
                    }
                }
                ScriptProgram::new(script)
            },
            &plan,
        )
        .run()
        .expect("corruption-only runs must terminate");

        // The checksum oracle: every corrupt frame the network delivered
        // was caught at exactly one verification site.
        prop_assert_eq!(report.faults.corrupt_detected, report.net.corrupted);
        // Exactly-once effects: the hot counter covers every op that
        // completed at its origin and never exceeds what was issued.
        let issued = i64::from(16 - 1) * i64::from(ops_per_rank);
        let applied = report.fetch_finals[0];
        prop_assert!(applied >= report.metrics.total_ops() as i64);
        prop_assert!(applied <= issued, "{} applied of {} issued", applied, issued);
        // No crash in the plan: a clean run applies everything.
        if report.failures.is_empty() {
            prop_assert_eq!(applied, issued);
        }
        for err in &report.failures {
            prop_assert!(err.to_string().contains("timed out"), "{}", err);
        }
        prop_assert_eq!(report.credit_leaks, 0);
    }

    /// Corruption replays deterministically: the same seed and window
    /// yields the same detection count, retry count and final counters.
    #[test]
    fn corruption_recovery_replays_identically(
        seed in any::<u64>(),
        p_pct in 5u32..26,
    ) {
        let build = || {
            let mut cfg = RuntimeConfig::new(12, TopologyKind::Fcg);
            cfg.procs_per_node = 2;
            cfg.seed = seed;
            let plan = FaultPlan::new().corrupt_window(
                SimTime::ZERO,
                SimTime::from_millis(4),
                f64::from(p_pct) / 100.0,
            );
            Simulation::build_with_faults(
                cfg,
                |rank| {
                    let mut script = Vec::new();
                    if rank != Rank(0) {
                        for _ in 0..3 {
                            script.push(Action::Op(Op::fetch_add(Rank(0), 1)));
                        }
                    }
                    ScriptProgram::new(script)
                },
                &plan,
            )
            .run()
            .expect("corruption-only runs must terminate")
        };
        let a = build();
        let b = build();
        prop_assert_eq!(a.finish_time, b.finish_time);
        prop_assert_eq!(a.net, b.net);
        prop_assert_eq!(a.faults, b.faults);
        prop_assert_eq!(a.fetch_finals.clone(), b.fetch_finals.clone());
    }
}
