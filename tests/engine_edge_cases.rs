//! Edge-case behaviour of the runtime engine: degenerate sizes, self-ops,
//! zero-byte transfers, repeated synchronisation, and mixed-op stress.

use vt_armci::{
    trace, Action, Op, OpKind, Rank, RuntimeConfig, ScriptProgram, SimTime, Simulation,
};
use vt_core::TopologyKind;

fn run_scripts(cfg: RuntimeConfig, mk: impl Fn(Rank) -> Vec<Action>) -> vt_armci::Report {
    Simulation::build(cfg, |rank| ScriptProgram::new(mk(rank)))
        .run()
        .expect("no deadlock")
}

#[test]
fn single_process_job_runs() {
    let mut cfg = RuntimeConfig::new(1, TopologyKind::Fcg);
    cfg.record_ops = true;
    let report = run_scripts(cfg, |_| {
        vec![
            Action::Op(Op::put(Rank(0), 1024)), // self put
            Action::Op(Op::fetch_add(Rank(0), 5)),
            Action::Barrier,
        ]
    });
    assert_eq!(report.metrics.total_ops(), 2);
    assert_eq!(report.net.messages, 0, "self traffic stays on the node");
}

#[test]
fn ops_to_own_rank_complete_quickly() {
    let mut cfg = RuntimeConfig::new(8, TopologyKind::Mfcg);
    cfg.procs_per_node = 2;
    cfg.record_ops = true;
    let report = run_scripts(cfg, |rank| vec![Action::Op(Op::acc(rank, 8192))]);
    for s in &report.metrics.per_rank {
        assert_eq!(s.ops, 1);
        assert!(
            s.latency_us.mean() < 10.0,
            "self acc {}us",
            s.latency_us.mean()
        );
    }
}

#[test]
fn zero_byte_operations_are_legal() {
    let mut cfg = RuntimeConfig::new(4, TopologyKind::Fcg);
    cfg.procs_per_node = 1;
    let report = run_scripts(cfg, |rank| {
        if rank == Rank(3) {
            vec![
                Action::Op(Op::put(Rank(0), 0)),
                Action::Op(Op::put_v(Rank(1), 1, 0)),
            ]
        } else {
            vec![]
        }
    });
    assert_eq!(report.metrics.total_ops(), 2);
}

#[test]
fn repeated_barriers_release_every_time() {
    let cfg = RuntimeConfig::new(16, TopologyKind::Cfcg);
    let report = run_scripts(cfg, |_| vec![Action::Barrier; 10]);
    assert!(report.finish_time > SimTime::ZERO);
    // 10 release rounds, each costing at least one barrier stage.
    assert!(report.finish_time >= SimTime::from_micros(2) * 10);
}

#[test]
fn waitall_without_outstanding_ops_is_noop() {
    let cfg = RuntimeConfig::new(4, TopologyKind::Fcg);
    let report = run_scripts(cfg, |_| vec![Action::WaitAll, Action::WaitAll]);
    assert_eq!(report.finish_time, SimTime::ZERO);
}

#[test]
fn compute_zero_is_legal() {
    let cfg = RuntimeConfig::new(2, TopologyKind::Fcg);
    let report = run_scripts(cfg, |_| vec![Action::Compute(SimTime::ZERO); 5]);
    assert_eq!(report.finish_time, SimTime::ZERO);
}

#[test]
fn mixed_op_stress_with_every_kind() {
    let mut cfg = RuntimeConfig::new(24, TopologyKind::Mfcg);
    cfg.procs_per_node = 3;
    cfg.record_ops = true;
    let report = run_scripts(cfg, |rank| {
        let t = Rank((rank.0 + 7) % 24);
        vec![
            Action::Op(Op::put(t, 4096)),
            Action::Op(Op::get(t, 4096)),
            Action::Op(Op::put_v(t, 4, 512)),
            Action::Op(Op::get_v(t, 4, 512)),
            Action::Op(Op::acc(t, 2048)),
            Action::Op(Op::fetch_add(Rank(0), 1)),
            Action::Op(Op::lock(Rank(0))),
            Action::Op(Op::unlock(Rank(0))),
            Action::Barrier,
        ]
    });
    assert_eq!(report.metrics.total_ops(), 24 * 8);
    // Every kind appears in the trace.
    for kind in [
        OpKind::Put,
        OpKind::Get,
        OpKind::PutV,
        OpKind::GetV,
        OpKind::Acc,
        OpKind::FetchAdd,
        OpKind::Lock,
        OpKind::Unlock,
    ] {
        assert!(
            report.metrics.ops.iter().any(|o| o.kind == kind),
            "missing {kind:?} in trace"
        );
    }
    // The trace exports cleanly.
    let mut buf = Vec::new();
    trace::write_op_trace(&report, &mut buf).unwrap();
    assert_eq!(
        String::from_utf8(buf).unwrap().trim().lines().count(),
        1 + 24 * 8
    );
}

#[test]
fn ragged_last_node_runs() {
    // 10 procs at 4 ppn: the last node hosts only 2 ranks.
    let mut cfg = RuntimeConfig::new(10, TopologyKind::Mfcg);
    cfg.procs_per_node = 4;
    let report = run_scripts(cfg, |rank| {
        vec![Action::Op(Op::acc(Rank((rank.0 + 5) % 10), 1024))]
    });
    assert_eq!(report.metrics.total_ops(), 10);
}

#[test]
fn generalized_kfcg_runs_in_the_engine() {
    let mut cfg = RuntimeConfig::new(60, TopologyKind::KFcg(4));
    cfg.procs_per_node = 2;
    let report = run_scripts(cfg, |_rank| {
        vec![Action::Op(Op::fetch_add(Rank(0), 1)), Action::Barrier]
    });
    assert_eq!(report.metrics.total_ops(), 60);
    assert!(report.cht_totals.forwarded > 0, "k=4 must forward");
    let _ = report.memory_node0;
}

#[test]
fn events_counter_is_populated() {
    let cfg = RuntimeConfig::new(8, TopologyKind::Fcg);
    let report = run_scripts(cfg, |rank| {
        if rank.0 % 2 == 1 {
            vec![Action::Op(Op::put_v(Rank(0), 2, 256))]
        } else {
            vec![]
        }
    });
    assert!(report.events > 0);
}
