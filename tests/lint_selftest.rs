//! Self-test for `vt-lint`: pins the analyzer to a fixture corpus and to
//! the committed workspace.
//!
//! * Every `.rs` file under `tests/lint_fixtures/` is lexed (never
//!   compiled) under the scope encoded in its filename prefix
//!   (`protocol_` / `sim_` / `plain_`), and the finding set must match
//!   the `//~ RULE` markers *exactly* — no missed positives, no stray
//!   false positives.
//! * The committed tree itself must lint clean under `lint_allow.toml`
//!   (the same gate CI enforces via `vtsim lint`).
//! * A property test drives random exception registers through
//!   `to_toml` → `parse` round-trips, covering the escape handling the
//!   hand-rolled TOML subset implements.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use proptest::prelude::*;
use std::collections::BTreeSet;
use std::path::Path;
use vt_lint::{lint_source, parse_allowlist, to_toml, AllowEntry, FileScope};

fn fixtures_dir() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("lint_fixtures")
}

/// Scope encoded in the fixture filename prefix.
fn scope_for(name: &str) -> FileScope {
    if name.starts_with("protocol_") {
        FileScope {
            protocol_path: true,
            sim_crate: true,
        }
    } else if name.starts_with("sim_") {
        FileScope {
            protocol_path: false,
            sim_crate: true,
        }
    } else {
        FileScope::default()
    }
}

/// Parses `//~ RULE` (this line) and `//~^ RULE` (previous line) markers.
/// Inner-doc lines (`//!`) are prose about the marker syntax, not markers.
fn expected_markers(src: &str) -> BTreeSet<(u32, String)> {
    let mut out = BTreeSet::new();
    for (idx, line) in src.lines().enumerate() {
        if line.trim_start().starts_with("//!") {
            continue;
        }
        let n = idx as u32 + 1;
        if let Some(pos) = line.find("//~") {
            let tail = &line[pos + 3..];
            let (target, tail) = match tail.strip_prefix('^') {
                Some(rest) => (n - 1, rest),
                None => (n, tail),
            };
            let rule = tail
                .split_whitespace()
                .next()
                .unwrap_or_else(|| panic!("marker without a rule id on line {n}"))
                .to_string();
            out.insert((target, rule));
        }
    }
    out
}

#[test]
fn fixture_corpus_matches_markers_exactly() {
    let dir = fixtures_dir();
    let mut names: Vec<_> = std::fs::read_dir(&dir)
        .expect("tests/lint_fixtures must exist")
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|e| e == "rs"))
        .collect();
    names.sort();
    assert!(
        names.len() >= 6,
        "fixture corpus shrank: {} files",
        names.len()
    );
    let mut saw_positive = false;
    let mut saw_negative = false;
    for path in names {
        let name = path.file_name().unwrap().to_string_lossy().to_string();
        let src = std::fs::read_to_string(&path).unwrap();
        let expected = expected_markers(&src);
        let found: BTreeSet<(u32, String)> = lint_source(&name, &src, scope_for(&name))
            .into_iter()
            .map(|f| (f.line, f.rule.id().to_string()))
            .collect();
        saw_positive |= !expected.is_empty();
        saw_negative |= expected.is_empty();
        let missed: Vec<_> = expected.difference(&found).collect();
        let stray: Vec<_> = found.difference(&expected).collect();
        assert!(
            missed.is_empty() && stray.is_empty(),
            "{name}: missed positives {missed:?}, stray findings {stray:?}\n\
             (expected {expected:?}, found {found:?})"
        );
    }
    assert!(saw_positive, "corpus has no true-positive fixtures");
    assert!(saw_negative, "corpus has no true-negative fixtures");
}

#[test]
fn committed_workspace_lints_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let report = vt_lint::lint_workspace(root, None)
        .unwrap_or_else(|e| panic!("lint must not error on the committed tree: {e}"));
    assert!(
        report.clean(),
        "committed tree has unallowlisted findings:\n{}",
        report.render()
    );
    assert!(report.files_scanned > 50, "workspace walk lost files");
}

/// Deterministic string from a seed, drawing on the characters the TOML
/// escape path must survive: quotes, backslashes, tabs, newlines, CR,
/// spaces, and a non-ASCII codepoint.
fn seeded_string(mut seed: u64, len: usize) -> String {
    const PALETTE: [char; 16] = [
        'a', 'b', 'z', 'A', '0', '9', ' ', '_', '/', '.', '"', '\\', '\t', '\n', '\r', 'é',
    ];
    let mut s = String::new();
    for _ in 0..len {
        seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        s.push(PALETTE[(seed >> 33) as usize % PALETTE.len()]);
    }
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any register round-trips: `parse(to_toml(entries)) == entries`,
    /// including embedded quotes, backslashes, and control characters.
    #[test]
    fn allowlist_roundtrips_through_toml(
        n in 1usize..5,
        seed in any::<u64>(),
    ) {
        let rules = ["D1", "D2", "D3", "D4", "P1"];
        let entries: Vec<AllowEntry> = (0..n)
            .map(|i| {
                let s = seed.wrapping_add((i as u64).wrapping_mul(0x9e3779b97f4a7c15));
                AllowEntry {
                    rule: rules[(s % 5) as usize].to_string(),
                    path: format!("crates/x/src/{}.rs", i),
                    // `x` anchor: the register rejects patterns that trim
                    // to nothing, so keep at least one non-space char.
                    pattern: format!("x{}", seeded_string(s ^ 0xA5A5, (s % 24) as usize)),
                    // MIN_JUSTIFICATION chars guaranteed by the prefix.
                    justification: format!(
                        "determinism argument: {}",
                        seeded_string(s ^ 0x5A5A, (s % 40) as usize)
                    ),
                }
            })
            .collect();
        let text = to_toml(&entries);
        let back = parse_allowlist(&text)
            .unwrap_or_else(|e| panic!("generated TOML must parse: {e}\n---\n{text}"));
        prop_assert_eq!(back, entries);
    }
}
