//! Cross-crate property tests for the paper's structural claims: LDF
//! routes are valid, short and deadlock-free on every topology and any
//! population, and the resource-graph metrics scale as §III states.

use proptest::prelude::*;
use vt_core::{DependencyGraph, RequestTree, TopologyKind, VirtualTopology};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every LDF route uses only topology edges, takes at most `ndims`
    /// hops, and ends at the destination — for any population, including
    /// partial meshes and cubes.
    #[test]
    fn routes_are_valid_and_short(n in 1u32..220, src_seed: u32, dst_seed: u32) {
        for kind in [TopologyKind::Fcg, TopologyKind::Mfcg, TopologyKind::Cfcg] {
            let topo = kind.build(n);
            let src = src_seed % n;
            let dst = dst_seed % n;
            let route = topo.route(src, dst);
            prop_assert!(route.len() <= topo.shape().ndims());
            let mut cur = src;
            for &hop in &route {
                prop_assert!(topo.has_edge(cur, hop), "{kind}: {cur}->{hop} not an edge (n={n})");
                cur = hop;
            }
            prop_assert_eq!(cur, dst);
        }
    }

    /// The hypercube obeys the same invariants on power-of-two populations.
    #[test]
    fn hypercube_routes_are_valid(k in 1u32..9, src_seed: u32, dst_seed: u32) {
        let n = 1u32 << k;
        let topo = TopologyKind::Hypercube.build(n);
        let src = src_seed % n;
        let dst = dst_seed % n;
        let route = topo.route(src, dst);
        prop_assert_eq!(route.len() as u32, (src ^ dst).count_ones());
        let mut cur = src;
        for &hop in &route {
            prop_assert!(topo.has_edge(cur, hop));
            cur = hop;
        }
        prop_assert_eq!(cur, dst);
    }

    /// The buffer-dependency graph of extended LDF is acyclic on any
    /// population — the paper's deadlock-freedom theorem (§IV-B) as an
    /// executable property, including the generalised k-dimensional grids.
    #[test]
    fn dependency_graph_is_acyclic(n in 2u32..90, extra_k in 4u8..7) {
        for kind in [
            TopologyKind::Mfcg,
            TopologyKind::Cfcg,
            TopologyKind::KFcg(extra_k),
        ] {
            let topo = kind.build(n);
            let dep = DependencyGraph::from_topology(&topo);
            prop_assert!(dep.is_deadlock_free(), "{kind} over {n} nodes has a cycle");
            // And being acyclic it must have a topological order.
            prop_assert!(dep.graph().topological_order().is_some());
        }
    }

    /// Request trees reach every node within the dimensional height bound
    /// and their parents agree with next_hop, for any root.
    #[test]
    fn request_trees_are_consistent(n in 1u32..150, root_seed: u32) {
        for kind in [TopologyKind::Fcg, TopologyKind::Mfcg, TopologyKind::Cfcg] {
            let topo = kind.build(n);
            let root = root_seed % n;
            let tree = RequestTree::build(&topo, root);
            prop_assert!(tree.height() <= topo.shape().ndims() as u32);
            let mut at_depth0 = 0;
            for v in 0..n {
                if v == root {
                    prop_assert_eq!(tree.depth(v), 0);
                    at_depth0 += 1;
                } else {
                    prop_assert_eq!(Some(tree.parent(v)), topo.next_hop(v, root));
                }
            }
            prop_assert_eq!(at_depth0, 1);
            prop_assert_eq!(tree.depth_histogram().iter().sum::<usize>(), n as usize);
        }
    }

    /// Degree formulas from §III: FCG has n−1 edges; MFCG `(X−1)+(Y−1)`;
    /// CFCG `(X−1)+(Y−1)+(Z−1)` — on fully-populated shapes.
    #[test]
    fn degree_formulas_hold_on_full_shapes(x in 2u32..12, y in 2u32..12, z in 2u32..6) {
        let n2 = x * y;
        let mfcg = vt_core::Mfcg::with_shape(x, y, n2);
        for node in [0, n2 - 1, n2 / 2] {
            prop_assert_eq!(mfcg.out_degree(node), (x - 1 + y - 1) as usize);
        }
        let n3 = x * y * z;
        let cfcg = vt_core::Cfcg::with_shape(x, y, z, n3);
        for node in [0, n3 - 1, n3 / 2] {
            prop_assert_eq!(cfcg.out_degree(node), (x - 1 + y - 1 + z - 1) as usize);
        }
        let fcg = vt_core::Fcg::new(n2);
        prop_assert_eq!(fcg.out_degree(0), (n2 - 1) as usize);
    }

    /// Edges are always symmetric and never dangle into missing nodes.
    #[test]
    fn edges_are_symmetric_and_in_range(n in 1u32..120) {
        for kind in [TopologyKind::Mfcg, TopologyKind::Cfcg] {
            let topo = kind.build(n);
            for node in 0..n {
                for nbr in topo.out_neighbors(node) {
                    prop_assert!(nbr < n);
                    prop_assert!(topo.has_edge(nbr, node), "{kind}: asymmetric {node}<->{nbr}");
                }
            }
        }
    }
}

#[test]
fn contention_metric_ordering_at_scale() {
    // §III: direct fan-in at a hot node — n−1, O(√n), O(∛n), O(log n).
    let n = 1024;
    let mut fan_ins = Vec::new();
    for kind in TopologyKind::ALL {
        let topo = kind.build(n);
        fan_ins.push((kind, RequestTree::build(&topo, 0).root_fan_in()));
    }
    assert_eq!(fan_ins[0].1, 1023); // FCG
    assert_eq!(fan_ins[1].1, 62); // MFCG 32x32
    assert_eq!(fan_ins[3].1, 10); // Hypercube log2(1024)
    assert!(fan_ins[1].1 > fan_ins[2].1 && fan_ins[2].1 > fan_ins[3].1);
}

#[test]
fn max_forwarding_matches_paper() {
    assert_eq!(TopologyKind::Fcg.build(100).max_forwarding_steps(), 0);
    assert_eq!(TopologyKind::Mfcg.build(100).max_forwarding_steps(), 1);
    assert_eq!(TopologyKind::Cfcg.build(100).max_forwarding_steps(), 2);
    assert_eq!(TopologyKind::Hypercube.build(128).max_forwarding_steps(), 6);
}
