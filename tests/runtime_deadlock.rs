//! End-to-end deadlock-freedom: the runtime's buffer credits genuinely
//! block, so these storms would hang (and be reported as deadlock) if the
//! forwarding order or the CHT parking discipline were wrong.

use vt_armci::{Action, Op, Rank, RuntimeConfig, Simulation};
use vt_core::TopologyKind;

/// All-to-all accumulate storm with minimal credits (M = 1) — the
/// harshest buffer pressure possible.
fn storm(kind: TopologyKind, n: u32, ppn: u32, buffers: u32) -> vt_armci::Report {
    let mut cfg = RuntimeConfig::new(n, kind);
    cfg.procs_per_node = ppn;
    cfg.buffers_per_proc = buffers;
    let sim = Simulation::build(cfg, |rank| {
        let mut targets: Vec<Rank> = (0..n).filter(|&t| t != rank.0).map(Rank).collect();
        let shift = rank.0 as usize % targets.len().max(1);
        targets.rotate_left(shift);
        let mut actions: Vec<Action> = targets
            .into_iter()
            .map(|t| Action::Op(Op::acc(t, 1024)))
            .collect();
        actions.push(Action::Barrier);
        vt_armci::ScriptProgram::new(actions)
    });
    sim.run()
        .unwrap_or_else(|e| panic!("{kind} over {n} nodes deadlocked: {e}"))
}

#[test]
fn all_to_all_on_partial_mfcg_populations() {
    for n in [5u32, 7, 11, 13, 23, 31, 47] {
        let report = storm(TopologyKind::Mfcg, n, 1, 1);
        assert_eq!(report.metrics.total_ops(), u64::from(n) * u64::from(n - 1));
    }
}

#[test]
fn all_to_all_on_partial_cfcg_populations() {
    // CFCG has deeper forwarding chains — this is the configuration that
    // exposed the head-of-line deadlock the CHT parking discipline fixes.
    for n in [11u32, 13, 17, 29, 37, 53] {
        let report = storm(TopologyKind::Cfcg, n, 1, 1);
        assert_eq!(report.metrics.total_ops(), u64::from(n) * u64::from(n - 1));
        assert!(report.cht_totals.forwarded > 0);
    }
}

#[test]
fn all_to_all_on_hypercube() {
    let report = storm(TopologyKind::Hypercube, 32, 1, 1);
    assert_eq!(report.metrics.total_ops(), 32 * 31);
    // log2(32)-dimensional routes: plenty of forwarding.
    assert!(report.cht_totals.forwarded > 500);
}

#[test]
fn storms_with_multiple_procs_per_node() {
    for kind in [TopologyKind::Mfcg, TopologyKind::Cfcg] {
        let report = storm(kind, 48, 4, 2);
        assert_eq!(report.metrics.total_ops(), 48 * 47);
    }
}

#[test]
fn parking_is_exercised_under_pressure() {
    // With M = 1 and deep forwarding, CHTs must park forwards; the storm
    // still completes.
    let report = storm(TopologyKind::Cfcg, 27, 1, 1);
    assert!(
        report.cht_totals.parked > 0,
        "expected credit-starved forwards to park at least once"
    );
}

#[test]
fn storm_is_deterministic() {
    let a = storm(TopologyKind::Mfcg, 23, 2, 1);
    let b = storm(TopologyKind::Mfcg, 23, 2, 1);
    assert_eq!(a.finish_time, b.finish_time);
    assert_eq!(a.net, b.net);
    assert_eq!(a.cht_totals, b.cht_totals);
}
