//! Golden-figure snapshots: scaled-down, fully deterministic renderings of
//! the paper's Fig. 5/6/7 pipelines — coalescing off, the baseline the
//! ablation compares against — diffed byte-for-byte against checked-in
//! snapshots under `tests/golden/`.
//!
//! When an intentional model change shifts the numbers, regenerate with
//!
//! ```text
//! VT_UPDATE_GOLDEN=1 cargo test --test golden_figures
//! ```
//!
//! and review the snapshot diff like any other code change.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use vt_apps::contention::{run, ContentionConfig, OpSpec, Scenario};
use vt_apps::Table;
use vt_core::{MemoryModel, TopologyKind};

fn golden_path(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

/// Whether this process was asked to run the figure pipelines with
/// membership repair enabled (`VT_GOLDEN_MEMBERSHIP=1`). The figures are
/// fault-free, so membership changes no number — but it *is* a different
/// protocol configuration, and the regen guard below refuses to let its
/// output overwrite the membership-disabled baselines.
fn membership_requested() -> bool {
    std::env::var_os("VT_GOLDEN_MEMBERSHIP").is_some_and(|v| v != "0")
}

/// The membership override the figure pipelines run under (see
/// [`membership_requested`]).
fn figure_membership() -> Option<vt_armci::MembershipConfig> {
    membership_requested().then(vt_armci::MembershipConfig::on)
}

/// FNV-1a hash of the canonical figure-configuration descriptor. Stamped
/// into every golden header so a snapshot records which protocol
/// configuration produced it.
fn config_stamp() -> String {
    let descriptor = format!(
        "procs=64 ppn=4 iterations=4 stride=8 seed=0xF166 coalescing=off \
         faults=off membership={}",
        if membership_requested() { "on" } else { "off" }
    );
    let mut h: u64 = 0xcbf29ce484222325;
    for b in descriptor.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    format!("{h:016x}")
}

/// The header line stamped as the first line of every golden snapshot.
fn stamp_header(stamp: &str) -> String {
    format!("# config {stamp}\n")
}

/// The regeneration guard: overwriting an existing snapshot is allowed
/// only when the snapshot's stamped configuration matches the one this
/// process is about to bake in. A missing file or a legacy file without a
/// stamp is fair game (first stamping); a mismatched stamp is refused so
/// e.g. a membership-enabled run cannot silently replace the
/// membership-disabled baselines.
///
/// # Errors
/// Returns the refusal message when `existing` carries a different stamp.
fn regen_guard(existing: Option<&str>, stamp: &str) -> Result<(), String> {
    let Some(first) = existing.and_then(|s| s.lines().next()) else {
        return Ok(());
    };
    match first.strip_prefix("# config ") {
        Some(old) if old != stamp => Err(format!(
            "refusing to overwrite golden snapshot: it was generated under \
             config {old}, but this run is config {stamp} (e.g. membership \
             enabled vs. the committed membership-disabled baseline); \
             rerun the regeneration under the baseline configuration"
        )),
        _ => Ok(()),
    }
}

/// Regenerating a snapshot bakes the current model's numbers into the
/// repository, so refuse outright when `vt-analyze` will not certify the
/// figure configurations (16 nodes x 4 ppn, coalescing off, fault-free,
/// every topology): numbers produced by an uncertified protocol are not
/// worth committing.
fn assert_figure_configs_certified() {
    for kind in TopologyKind::ALL {
        let rt = vt_armci::RuntimeConfig::new(64, kind);
        if let Err(report) = vt_analyze::certify(&rt, None) {
            panic!(
                "refusing to regenerate golden snapshots: the {kind} figure \
                 configuration is not certified by vt-analyze\n{report}"
            );
        }
    }
}

/// Compares `actual` against the checked-in snapshot, or rewrites the
/// snapshot when `VT_UPDATE_GOLDEN` is set.
fn check_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    let stamp = config_stamp();
    let actual = format!("{}{}", stamp_header(&stamp), actual);
    if std::env::var_os("VT_UPDATE_GOLDEN").is_some() {
        assert_figure_configs_certified();
        let existing = std::fs::read_to_string(&path).ok();
        if let Err(refusal) = regen_guard(existing.as_deref(), &stamp) {
            panic!("{refusal}");
        }
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden snapshot {}: {e}\n\
             regenerate with VT_UPDATE_GOLDEN=1 cargo test --test golden_figures",
            path.display()
        )
    });
    if expected != actual {
        let diff = expected
            .lines()
            .zip(actual.lines())
            .enumerate()
            .find(|(_, (e, a))| e != a)
            .map(|(i, (e, a))| format!("first diff at line {}:\n -{e}\n +{a}", i + 1))
            .unwrap_or_else(|| "files differ in length".to_string());
        panic!(
            "{name} drifted from its golden snapshot ({})\n{diff}\n\
             if the change is intentional, regenerate with \
             VT_UPDATE_GOLDEN=1 cargo test --test golden_figures",
            path.display()
        );
    }
}

// ---- Figure 5: memory scaling -------------------------------------------

#[test]
fn fig5_memory_matches_golden() {
    let model = MemoryModel::default(); // 12 ppn, B = 16 KiB, M = 4
    let mut out = String::from("# Fig. 5 (scaled): master memory by topology and node count\n");
    let mut table = Table::new(&[
        "topology",
        "nodes",
        "pool (KiB)",
        "VmRSS (KiB)",
        "incr (KiB)",
    ]);
    for kind in TopologyKind::ALL {
        for nodes in [16u32, 64, 256] {
            let topo = kind.build(nodes);
            table.row(&[
                kind.name().to_string(),
                nodes.to_string(),
                (model.cht_pool_bytes(&topo, 0) / 1024).to_string(),
                (model.master_vmrss_bytes(&topo, 0) / 1024).to_string(),
                (model.increment_bytes(&topo, 0) / 1024).to_string(),
            ]);
        }
    }
    out.push_str(&table.render());
    check_golden("fig5_memory.txt", &out);
}

// ---- Figures 6 and 7: contention protocol -------------------------------

fn contention_figure(title: &str, op: OpSpec) -> String {
    let jobs = [
        (TopologyKind::Fcg, Scenario::NoContention),
        (TopologyKind::Fcg, Scenario::pct20()),
        (TopologyKind::Mfcg, Scenario::NoContention),
        (TopologyKind::Mfcg, Scenario::pct20()),
        (TopologyKind::Cfcg, Scenario::NoContention),
        (TopologyKind::Cfcg, Scenario::pct20()),
        (TopologyKind::Hypercube, Scenario::NoContention),
    ];
    let mut out = format!("# {title}: 64 procs (16 nodes x 4 ppn), coalescing off\n");
    let mut table = Table::new(&[
        "topology",
        "scenario",
        "finish (us)",
        "mean (us)",
        "median (us)",
        "stream misses",
        "forwards",
        "net msgs",
    ]);
    for (topology, scenario) in jobs {
        let cfg = ContentionConfig {
            n_procs: 64,
            measure_stride: 8,
            iterations: 4,
            membership: figure_membership(),
            ..ContentionConfig::paper(topology, op, scenario)
        };
        let o = run(&cfg);
        table.row(&[
            topology.name().to_string(),
            scenario.label().to_string(),
            format!("{:.3}", o.finish.as_micros_f64()),
            format!("{:.3}", o.mean_us()),
            format!("{:.3}", o.median_us()),
            o.stream_misses.to_string(),
            o.forwards.to_string(),
            o.messages.to_string(),
        ]);
    }
    let _ = write!(out, "{}", table.render());
    out
}

#[test]
fn fig6_vector_ops_matches_golden() {
    check_golden(
        "fig6_vector_ops.txt",
        &contention_figure("Fig. 6 (scaled): vector put", OpSpec::vector_put()),
    );
}

#[test]
fn fig7_fetch_add_matches_golden() {
    check_golden(
        "fig7_fetch_add.txt",
        &contention_figure("Fig. 7 (scaled): fetch-&-add", OpSpec::fetch_add()),
    );
}

// ---- Regeneration guard --------------------------------------------------

#[test]
fn regen_guard_refuses_mismatched_config_stamps() {
    let stamp = config_stamp();
    // Fresh file / legacy unstamped file: regeneration is allowed.
    assert!(regen_guard(None, &stamp).is_ok());
    assert!(regen_guard(Some("# Fig. 5 (scaled): legacy header\n"), &stamp).is_ok());
    // Same stamp: allowed.
    let same = format!("{}# Fig. 5 ...\n", stamp_header(&stamp));
    assert!(regen_guard(Some(&same), &stamp).is_ok());
    // Different stamp — e.g. the committed membership-disabled baseline
    // against a membership-enabled regeneration run: refused.
    let other = "# config 0123456789abcdef\n# Fig. 5 ...\n";
    let refusal = regen_guard(Some(other), &stamp).unwrap_err();
    assert!(refusal.contains("refusing to overwrite"), "{refusal}");
    assert!(refusal.contains(&stamp), "{refusal}");
}

#[test]
fn baseline_config_stamp_is_pinned() {
    // The literal FNV-1a stamp of the baseline figure configuration,
    // pinned so core refactors (event queue, payload plumbing, hashers)
    // provably cannot drift the configuration descriptor — and with it the
    // committed snapshots — without a reviewed change to this constant.
    if membership_requested() {
        return; // the pin is for the baseline descriptor only
    }
    assert_eq!(config_stamp(), "c24d9f8164b8c159");
}

#[test]
fn committed_baselines_carry_the_membership_disabled_stamp() {
    // The committed snapshots must be regenerable under the baseline
    // (membership-off) configuration — i.e. their stamped header matches
    // what a default regeneration run would stamp. During a regeneration
    // run the snapshots are being rewritten concurrently, so the check
    // only applies to the committed state.
    if std::env::var_os("VT_UPDATE_GOLDEN").is_some() {
        return;
    }
    assert!(
        !membership_requested(),
        "golden comparison tests assume the baseline configuration"
    );
    for name in [
        "fig5_memory.txt",
        "fig6_vector_ops.txt",
        "fig7_fetch_add.txt",
    ] {
        let content = std::fs::read_to_string(golden_path(name)).unwrap();
        assert!(
            content.starts_with(&stamp_header(&config_stamp())),
            "{name} is not stamped with the baseline config"
        );
        assert!(regen_guard(Some(&content), &config_stamp()).is_ok());
    }
}
