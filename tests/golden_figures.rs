//! Golden-figure snapshots: scaled-down, fully deterministic renderings of
//! the paper's Fig. 5/6/7 pipelines — coalescing off, the baseline the
//! ablation compares against — diffed byte-for-byte against checked-in
//! snapshots under `tests/golden/`.
//!
//! When an intentional model change shifts the numbers, regenerate with
//!
//! ```text
//! VT_UPDATE_GOLDEN=1 cargo test --test golden_figures
//! ```
//!
//! and review the snapshot diff like any other code change.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use vt_apps::contention::{run, ContentionConfig, OpSpec, Scenario};
use vt_apps::Table;
use vt_core::{MemoryModel, TopologyKind};

fn golden_path(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

/// Regenerating a snapshot bakes the current model's numbers into the
/// repository, so refuse outright when `vt-analyze` will not certify the
/// figure configurations (16 nodes x 4 ppn, coalescing off, fault-free,
/// every topology): numbers produced by an uncertified protocol are not
/// worth committing.
fn assert_figure_configs_certified() {
    for kind in TopologyKind::ALL {
        let rt = vt_armci::RuntimeConfig::new(64, kind);
        if let Err(report) = vt_analyze::certify(&rt, None) {
            panic!(
                "refusing to regenerate golden snapshots: the {kind} figure \
                 configuration is not certified by vt-analyze\n{report}"
            );
        }
    }
}

/// Compares `actual` against the checked-in snapshot, or rewrites the
/// snapshot when `VT_UPDATE_GOLDEN` is set.
fn check_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var_os("VT_UPDATE_GOLDEN").is_some() {
        assert_figure_configs_certified();
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden snapshot {}: {e}\n\
             regenerate with VT_UPDATE_GOLDEN=1 cargo test --test golden_figures",
            path.display()
        )
    });
    if expected != actual {
        let diff = expected
            .lines()
            .zip(actual.lines())
            .enumerate()
            .find(|(_, (e, a))| e != a)
            .map(|(i, (e, a))| format!("first diff at line {}:\n -{e}\n +{a}", i + 1))
            .unwrap_or_else(|| "files differ in length".to_string());
        panic!(
            "{name} drifted from its golden snapshot ({})\n{diff}\n\
             if the change is intentional, regenerate with \
             VT_UPDATE_GOLDEN=1 cargo test --test golden_figures",
            path.display()
        );
    }
}

// ---- Figure 5: memory scaling -------------------------------------------

#[test]
fn fig5_memory_matches_golden() {
    let model = MemoryModel::default(); // 12 ppn, B = 16 KiB, M = 4
    let mut out = String::from("# Fig. 5 (scaled): master memory by topology and node count\n");
    let mut table = Table::new(&[
        "topology",
        "nodes",
        "pool (KiB)",
        "VmRSS (KiB)",
        "incr (KiB)",
    ]);
    for kind in TopologyKind::ALL {
        for nodes in [16u32, 64, 256] {
            let topo = kind.build(nodes);
            table.row(&[
                kind.name().to_string(),
                nodes.to_string(),
                (model.cht_pool_bytes(&topo, 0) / 1024).to_string(),
                (model.master_vmrss_bytes(&topo, 0) / 1024).to_string(),
                (model.increment_bytes(&topo, 0) / 1024).to_string(),
            ]);
        }
    }
    out.push_str(&table.render());
    check_golden("fig5_memory.txt", &out);
}

// ---- Figures 6 and 7: contention protocol -------------------------------

fn contention_figure(title: &str, op: OpSpec) -> String {
    let jobs = [
        (TopologyKind::Fcg, Scenario::NoContention),
        (TopologyKind::Fcg, Scenario::pct20()),
        (TopologyKind::Mfcg, Scenario::NoContention),
        (TopologyKind::Mfcg, Scenario::pct20()),
        (TopologyKind::Cfcg, Scenario::NoContention),
        (TopologyKind::Cfcg, Scenario::pct20()),
        (TopologyKind::Hypercube, Scenario::NoContention),
    ];
    let mut out = format!("# {title}: 64 procs (16 nodes x 4 ppn), coalescing off\n");
    let mut table = Table::new(&[
        "topology",
        "scenario",
        "finish (us)",
        "mean (us)",
        "median (us)",
        "stream misses",
        "forwards",
        "net msgs",
    ]);
    for (topology, scenario) in jobs {
        let cfg = ContentionConfig {
            n_procs: 64,
            measure_stride: 8,
            iterations: 4,
            ..ContentionConfig::paper(topology, op, scenario)
        };
        let o = run(&cfg);
        table.row(&[
            topology.name().to_string(),
            scenario.label().to_string(),
            format!("{:.3}", o.finish.as_micros_f64()),
            format!("{:.3}", o.mean_us()),
            format!("{:.3}", o.median_us()),
            o.stream_misses.to_string(),
            o.forwards.to_string(),
            o.messages.to_string(),
        ]);
    }
    let _ = write!(out, "{}", table.render());
    out
}

#[test]
fn fig6_vector_ops_matches_golden() {
    check_golden(
        "fig6_vector_ops.txt",
        &contention_figure("Fig. 6 (scaled): vector put", OpSpec::vector_put()),
    );
}

#[test]
fn fig7_fetch_add_matches_golden() {
    check_golden(
        "fig7_fetch_add.txt",
        &contention_figure("Fig. 7 (scaled): fetch-&-add", OpSpec::fetch_add()),
    );
}
