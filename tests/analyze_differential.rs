//! Differential tests between the static verifier and the runtime it
//! certifies: a configuration `vt-analyze` certifies must actually
//! quiesce (terminate with all credits accounted) when the engine runs a
//! random workload under the certified fault plan, and every cycle
//! witness the analyzer emits must be a real cycle of the dependency
//! graph it was extracted from — cross-checked against an independent
//! Kahn topological sort written in this test.

use proptest::prelude::*;
use vt_analyze::depgraph::{self, DepGraph};
use vt_armci::{Action, FaultPlan, Op, Rank, RuntimeConfig, ScriptProgram, Simulation};
use vt_core::TopologyKind;
use vt_simnet::SimTime;

/// One random workload over one random configuration.
#[derive(Clone, Debug)]
struct Spec {
    kind: TopologyKind,
    n_procs: u32,
    ppn: u32,
    ops_per_rank: u32,
    op_mix: u8,
    coalesce: bool,
    crash: Option<(u32, u64)>,
}

fn spec() -> impl Strategy<Value = Spec> {
    (
        prop_oneof![
            Just(TopologyKind::Fcg),
            Just(TopologyKind::Mfcg),
            Just(TopologyKind::Cfcg),
            Just(TopologyKind::Hypercube),
        ],
        2u32..48,
        1u32..4,
        1u32..5,
        any::<u8>(),
        any::<bool>(),
        any::<bool>(),
        (any::<u32>(), 50u64..400),
    )
        .prop_map(
            |(kind, n_procs, ppn, ops_per_rank, op_mix, coalesce, do_crash, crash)| Spec {
                kind,
                n_procs,
                ppn,
                ops_per_rank,
                op_mix,
                coalesce,
                crash: do_crash.then_some(crash),
            },
        )
}

fn nodes_of(spec: &Spec) -> u32 {
    spec.n_procs.div_ceil(spec.ppn)
}

/// Hypercube only supports power-of-two node counts; snap down.
fn normalise(mut spec: Spec) -> Spec {
    if spec.kind == TopologyKind::Hypercube {
        let nodes = nodes_of(&spec);
        let pow2 = 1u32 << (31 - nodes.leading_zeros());
        spec.n_procs = pow2 * spec.ppn;
    }
    spec
}

fn config_of(spec: &Spec) -> RuntimeConfig {
    let mut cfg = RuntimeConfig::new(spec.n_procs, spec.kind);
    cfg.procs_per_node = spec.ppn;
    cfg.retry.timeout = SimTime::from_micros(200);
    if spec.coalesce {
        cfg.coalesce = vt_armci::CoalesceConfig::on();
    }
    cfg
}

fn plan_of(spec: &Spec) -> FaultPlan {
    let nodes = nodes_of(spec);
    match spec.crash {
        Some((pick, at_us)) if nodes > 1 => {
            FaultPlan::new().crash_node(SimTime::from_micros(at_us), 1 + pick % (nodes - 1))
        }
        _ => FaultPlan::default(),
    }
}

fn program_of(spec: &Spec, rank: Rank) -> ScriptProgram {
    let mut actions = vec![Action::Compute(SimTime::from_micros(
        1 + u64::from(rank.0 % 5),
    ))];
    for i in 0..spec.ops_per_rank {
        let target = Rank((u32::from(spec.op_mix) + rank.0 * 13 + i * 5) % spec.n_procs);
        actions.push(Action::Op(match (spec.op_mix.wrapping_add(i as u8)) % 3 {
            0 => Op::fetch_add(Rank(0), 1),
            1 => Op::acc(target, 512),
            _ => Op::put_v(target, 2, 256),
        }));
    }
    ScriptProgram::new(actions)
}

/// Independent cycle detector: Kahn's algorithm over the analyzer's
/// dependency graph, sharing no code with `DiGraph::find_cycle`.
fn kahn_has_cycle(dg: &DepGraph) -> bool {
    let n = dg.graph.len();
    let mut indeg = vec![0usize; n];
    for v in 0..n as u32 {
        for &s in dg.graph.successors(v) {
            indeg[s as usize] += 1;
        }
    }
    let mut queue: Vec<u32> = (0..n as u32).filter(|&v| indeg[v as usize] == 0).collect();
    let mut removed = 0usize;
    while let Some(v) = queue.pop() {
        removed += 1;
        for &s in dg.graph.successors(v) {
            indeg[s as usize] -= 1;
            if indeg[s as usize] == 0 {
                queue.push(s);
            }
        }
    }
    removed != n
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Whatever vt-analyze certifies, the engine finishes: the run
    /// quiesces (no hang diagnosed), and at quiescence no live sender is
    /// still holding a buffer credit — the runtime counterpart of the
    /// model checker's zero-leak property. Fault-free configurations must
    /// always be certified; crashed ones may be refused (escape-critical
    /// victims in partial packings), and a refusal is only accepted when
    /// a crash was actually planned.
    #[test]
    fn certified_configs_quiesce(spec in spec()) {
        let spec = normalise(spec);
        let cfg = config_of(&spec);
        let plan = plan_of(&spec);
        match vt_analyze::certify(&cfg, Some(&plan)) {
            Err(report) => {
                prop_assert!(
                    !plan.node_crashes.is_empty(),
                    "fault-free configuration refused:\n{}", report
                );
            }
            Ok(()) => {
                let sim = Simulation::build_with_faults(
                    cfg, |rank| program_of(&spec, rank), &plan,
                );
                let report = sim.run().expect("certified run must quiesce");
                prop_assert_eq!(
                    report.credit_leaks, 0,
                    "live sender still holds credits at quiescence"
                );
            }
        }
    }

    /// Cycle witnesses are real: the analyzer reports a cycle exactly when
    /// an independent Kahn sort finds one, and the witness it emits is a
    /// closed walk whose every step is an arc of the graph. Routers are a
    /// random mix of the engine's own forwarding (acyclic) and a rotated
    /// ring (cyclic for any n >= 3 once pairs wrap around).
    #[test]
    fn cycle_witnesses_are_real_cycles(
        n in 3u32..24,
        step_pick in any::<u32>(),
        miswire in any::<bool>(),
    ) {
        let topo = TopologyKind::Fcg.build(n);
        let dg = if miswire {
            // Rotate by a step coprime with n so every pair terminates.
            let mut step = 1 + step_pick % (n - 1);
            while gcd(step, n) != 1 {
                step -= 1;
            }
            depgraph::build_with_router(&topo, 1, |src, dst| {
                let mut route = Vec::new();
                let mut cur = src;
                while cur != dst {
                    cur = (cur + step) % n;
                    route.push((cur, 0u8));
                }
                Some(route)
            })
        } else {
            depgraph::build(&topo, &[])
        };
        let witness = dg.find_cycle_witness();
        prop_assert_eq!(
            witness.is_some(),
            kahn_has_cycle(&dg),
            "witness presence must agree with an independent toposort"
        );
        if let Some(w) = witness {
            prop_assert!(miswire, "the engine's own routing must stay acyclic");
            prop_assert_eq!(w.hops.first(), w.hops.last(), "walk must close");
            prop_assert!(w.len() >= 2);
            let nch = dg.channels.len() as u32;
            for pair in w.hops.windows(2) {
                let ((f1, t1), c1) = pair[0];
                let ((f2, t2), c2) = pair[1];
                prop_assert_eq!(t1, f2, "consecutive wait-for hops must chain");
                let v1 = u32::from(c1) * nch
                    + dg.channels.iter().position(|&e| e == (f1, t1)).unwrap() as u32;
                let v2 = u32::from(c2) * nch
                    + dg.channels.iter().position(|&e| e == (f2, t2)).unwrap() as u32;
                prop_assert!(
                    dg.graph.successors(v1).contains(&v2),
                    "witness step ({f1}->{t1} c{c1}) -> ({f2}->{t2} c{c2}) is not a graph arc"
                );
            }
        }
    }
}

fn gcd(a: u32, b: u32) -> u32 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}
