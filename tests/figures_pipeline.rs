//! Scaled-down versions of every figure pipeline, asserting the paper's
//! qualitative results end to end. The full-size harnesses live in
//! `crates/bench/benches/`; these keep the claims under `cargo test`.

use vt_apps::lu::{self, LuConfig};
use vt_apps::nwchem_ccsd::{self, CcsdConfig};
use vt_apps::nwchem_dft::{self, DftConfig};
use vt_core::{MemoryModel, TopologyKind};

// ---- Figure 5: memory scaling ------------------------------------------

#[test]
fn fig5_fcg_grows_linearly_and_others_sublinearly() {
    let model = MemoryModel::default();
    let inc = |kind: TopologyKind, nodes: u32| model.increment_bytes(&kind.build(nodes), 0) as f64;
    // FCG: doubling nodes doubles the increment.
    let r = inc(TopologyKind::Fcg, 1024) / inc(TopologyKind::Fcg, 512);
    assert!((r - 2.0).abs() < 0.05, "FCG ratio {r}");
    // MFCG: doubling nodes multiplies the pool by about √2; with the fixed
    // bookkeeping the VmRSS increment grows clearly sublinearly.
    let r = inc(TopologyKind::Mfcg, 1024) / inc(TopologyKind::Mfcg, 512);
    assert!(r < 1.8, "MFCG ratio {r}");
    // Hypercube: doubling adds one edge — almost flat pools.
    let pool = |nodes: u32| model.cht_pool_bytes(&TopologyKind::Hypercube.build(nodes), 0) as f64;
    let r = pool(1024) / pool(512);
    assert!(r < 1.2, "Hypercube pool ratio {r}");
}

#[test]
fn fig5_orderings_match_paper_at_12288_processes() {
    let model = MemoryModel::default();
    let nodes = 1024; // 12 288 processes at 12 ppn
    let incs: Vec<(TopologyKind, u64)> = TopologyKind::ALL
        .into_iter()
        .map(|k| (k, model.increment_bytes(&k.build(nodes), 0)))
        .collect();
    // FCG ≫ MFCG > CFCG > Hypercube, with FCG's increment near the paper's
    // 812 MB.
    assert!(incs.windows(2).all(|w| w[0].1 > w[1].1));
    let fcg_mb = incs[0].1 as f64 / 1048576.0;
    assert!(
        (700.0..900.0).contains(&fcg_mb),
        "FCG increment {fcg_mb} MB"
    );
}

// ---- Figure 8: NAS LU ---------------------------------------------------

fn lu_cfg(procs: u32, kind: TopologyKind) -> LuConfig {
    LuConfig {
        iterations: 8,
        serial_seconds_per_iter: 28.0,
        ..LuConfig::class_c(procs, kind)
    }
}

#[test]
fn fig8_lu_strong_scales_and_is_topology_insensitive() {
    let t192 = lu::run(&lu_cfg(192, TopologyKind::Fcg)).exec_seconds;
    let t768 = lu::run(&lu_cfg(768, TopologyKind::Fcg)).exec_seconds;
    assert!(t768 < t192 * 0.5, "LU must strong-scale: {t192} -> {t768}");

    let fcg = lu::run(&lu_cfg(384, TopologyKind::Fcg)).exec_seconds;
    for kind in [TopologyKind::Mfcg, TopologyKind::Cfcg] {
        let t = lu::run(&lu_cfg(384, kind)).exec_seconds;
        let ratio = t / fcg;
        assert!(
            (0.85..1.15).contains(&ratio),
            "{kind} vs FCG on LU: ratio {ratio}"
        );
    }
}

// ---- Figure 9a: NWChem DFT ----------------------------------------------

fn dft_cfg(cores: u32, kind: TopologyKind) -> DftConfig {
    DftConfig {
        ppn: 4,
        total_tasks: 6_000,
        mean_task_seconds: 0.008,
        ..DftConfig::siosi3(cores, kind)
    }
}

#[test]
fn fig9a_mfcg_beats_fcg_when_nxtval_saturates() {
    // At this scaled-down size the nxtval rate (cores / task length)
    // saturates the hot node just as at the paper's 10k+ cores.
    let fcg = nwchem_dft::run(&dft_cfg(1024, TopologyKind::Fcg));
    let mfcg = nwchem_dft::run(&dft_cfg(1024, TopologyKind::Mfcg));
    assert_eq!(fcg.tasks_executed, mfcg.tasks_executed);
    assert!(
        mfcg.exec_seconds < 0.8 * fcg.exec_seconds,
        "MFCG must win clearly under nxtval saturation: {} vs {}",
        mfcg.exec_seconds,
        fcg.exec_seconds
    );
    // Responses and acks travel directly (outside the virtual topology), so
    // both runs see stream misses; FCG must still see more, because its
    // hot node is hit from hundreds of distinct sources.
    assert!(fcg.stream_misses > mfcg.stream_misses);
}

#[test]
fn fig9a_work_is_conserved_across_scales() {
    let small = nwchem_dft::run(&dft_cfg(256, TopologyKind::Fcg));
    let large = nwchem_dft::run(&dft_cfg(1024, TopologyKind::Fcg));
    assert_eq!(small.tasks_executed, 6_000);
    assert_eq!(large.tasks_executed, 6_000);
}

// ---- Figure 9b: NWChem CCSD ---------------------------------------------

fn ccsd_cfg(cores: u32, kind: TopologyKind) -> CcsdConfig {
    let mut cfg = CcsdConfig::water(cores, kind);
    cfg.serial_seconds /= 200.0;
    cfg.fixed_seconds_per_proc /= 200.0;
    cfg
}

#[test]
fn fig9b_memory_crossover() {
    // Below the wall: FCG at least matches MFCG.
    let fcg = nwchem_ccsd::run(&ccsd_cfg(2004, TopologyKind::Fcg));
    let mfcg = nwchem_ccsd::run(&ccsd_cfg(2004, TopologyKind::Mfcg));
    assert_eq!(fcg.paging_factor, 1.0);
    assert!(fcg.exec_seconds <= mfcg.exec_seconds * 1.05);

    // Past the wall (~10k cores): FCG's pool overflows node memory and the
    // ranking flips.
    let fcg = nwchem_ccsd::run(&ccsd_cfg(14004, TopologyKind::Fcg));
    let mfcg = nwchem_ccsd::run(&ccsd_cfg(14004, TopologyKind::Mfcg));
    assert!(fcg.paging_factor > 1.0, "FCG should page at 14k cores");
    assert_eq!(mfcg.paging_factor, 1.0, "MFCG must still fit");
    assert!(
        fcg.exec_seconds > mfcg.exec_seconds,
        "crossover: {} !> {}",
        fcg.exec_seconds,
        mfcg.exec_seconds
    );
}

#[test]
fn fig9b_scaling_saturates_like_the_paper() {
    // The paper's water-model curves drop slowly from 2k to 20k cores —
    // per-process fixed work dominates. Speedup from 10x cores stays far
    // below 10x.
    let small = nwchem_ccsd::run(&ccsd_cfg(2004, TopologyKind::Mfcg));
    let large = nwchem_ccsd::run(&ccsd_cfg(20004, TopologyKind::Mfcg));
    let speedup = small.exec_seconds / large.exec_seconds;
    assert!(speedup > 1.0 && speedup < 5.0, "speedup {speedup}");
}
