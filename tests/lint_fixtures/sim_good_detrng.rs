//! vt-lint fixture (scope: sim crate) — D2/D3 true negatives.
//!
//! No markers: zero findings expected. `DetRng` is the sanctioned
//! randomness source, and `#[cfg(test)]` modules may use wall clocks to
//! time themselves without breaking replay determinism.

fn jitter(rng: &mut DetRng, span_ns: u64) -> u64 {
    rng.next_u64() % span_ns.max(1)
}

fn pick_victim(rng: &mut DetRng, n: u32) -> u32 {
    (rng.next_u64() % u64::from(n.max(1))) as u32
}

// Prose about `Instant::now()` or `thread_rng()` in comments and strings
// is invisible to the analyzer.
fn doc_line() -> &'static str {
    "never call Instant::now() or thread_rng() in simulation code"
}

#[cfg(test)]
mod tests {
    // Wall-clock use inside tests is exempt: tests may time themselves.
    #[test]
    fn timing_a_test_is_fine() {
        let t0 = Instant::now();
        assert!(t0.elapsed().as_secs() < 60);
    }
}
