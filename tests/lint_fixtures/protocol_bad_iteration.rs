//! vt-lint fixture (scope: protocol path) — D1 true positives.
//!
//! `//~ D1` marks a line the analyzer must flag; `tests/lint_selftest.rs`
//! asserts the finding set matches the markers exactly. This file is never
//! compiled — it exists only as lexer input.

struct CreditTable {
    held: FxHashMap<u64, u32>,
    blocked: FxHashSet<u64>,
}

impl CreditTable {
    fn leak_order(&self) -> Vec<u64> {
        self.held.keys().copied().collect() //~ D1
    }

    fn drain_everything(&mut self) -> Vec<(u64, u32)> {
        self.held.drain().collect() //~ D1
    }

    fn first_blocked(&self) -> Option<u64> {
        self.blocked.iter().next().copied() //~ D1
    }

    fn broadcast(&self) {
        for (node, credits) in &self.held { //~ D1
            send(*node, *credits);
        }
    }
}

fn availability(n: u32) -> bool {
    let seen: std::collections::HashSet<u32> = Default::default(); //~ D1
    seen.len() == n as usize
}

fn send(_node: u64, _credits: u32) {}
