//! vt-lint fixture (scope: sim crate, not protocol) — D2/D3 true
//! positives: ambient nondeterminism and non-DetRng randomness.

fn stamp() -> u64 {
    let t = Instant::now(); //~ D2
    drop(t);
    let w = SystemTime::now(); //~ D2
    drop(w);
    0
}

fn hasher_seed() -> u64 {
    let state = RandomState::new(); //~ D2
    drop(state);
    0
}

fn who_am_i() -> String {
    format!("{:?}", std::thread::current().name()) //~ D2
}

fn tuning_from_env() -> Option<String> {
    std::env::var("VT_FANOUT").ok() //~ D2
}

fn workers() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get()) //~ D2
}

fn roll() -> u64 {
    thread_rng().next_u64() //~ D3
}

fn reseed() -> u64 {
    StdRng::from_entropy().next_u64() //~ D3
}

fn coin() -> bool {
    rand::random() //~ D3
}
