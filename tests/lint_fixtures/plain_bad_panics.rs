//! vt-lint fixture (scope: neither protocol nor sim) — P1 true
//! positives: naked panics and unjustified panic-allowances. P1 applies
//! workspace-wide, so even "plain" files are audited.
//!
//! `//~^ P1` marks the *previous* line (used where the finding lands on
//! an attribute line that a same-line marker comment would justify).

fn parse_port(s: &str) -> u16 {
    s.parse().unwrap() //~ P1
}

fn take(v: Option<u32>) -> u32 {
    v.expect("value must be present") //~ P1
}

#[allow(clippy::unwrap_used)]
fn no_reason_given(v: Option<u32>) -> u32 { //~^ P1
    // The allow above carries no justification comment, so the audit
    // flags the attribute itself; the unwrap below is covered by it.
    v.unwrap()
}
