//! vt-lint fixture (scope: protocol path) — D4 true positives and
//! negatives: floating-point accumulation in protocol/credit state.

struct Window {
    ewma_ns: f64,
    total: f64,
    bytes: u64,
}

impl Window {
    fn update(&mut self, sample: f64) {
        self.total += sample; //~ D4
        self.ewma_ns = 0.875 * self.ewma_ns + 0.125 * sample; //~ D4
    }

    fn reduce(samples: &[f64]) -> f64 {
        samples.iter().sum::<f64>() //~ D4
    }

    // Integer accumulation is the sanctioned form: nanoseconds, bytes,
    // counts all stay exact under any merge order.
    fn account(&mut self, delta: u64) {
        self.bytes += delta;
    }

    // Reading a float without feeding it back into itself is fine.
    fn headroom(&self) -> f64 {
        let ceiling: f64 = 1.5;
        ceiling * 2.0
    }
}
