//! vt-lint fixture (scope: neither protocol nor sim) — P1 true
//! negatives: justified allowances, fallible alternatives, and the
//! test-module exemption.

// Invariant: `table` is built by `new()` with every key in 0..n present,
// so a lookup through a validated index cannot miss; a panic here means
// the constructor itself is broken.
#[allow(clippy::expect_used)]
fn lookup(table: &[u32], idx: usize) -> u32 {
    table.get(idx).copied().expect("index validated by caller")
}

#[allow(clippy::unwrap_used)] // ring is non-empty by construction (see new())
fn head(ring: &[u64]) -> u64 {
    ring.first().copied().unwrap()
}

// The fallible idioms the policy prefers.
fn parse_port(s: &str) -> Option<u16> {
    s.parse().ok()
}

fn take_or(v: Option<u32>, dflt: u32) -> u32 {
    v.unwrap_or(dflt)
}

#[cfg(test)]
mod tests {
    // Tests may unwrap freely: a panic *is* the failure report.
    #[test]
    fn parses() {
        assert_eq!("7".parse::<u32>().unwrap(), 7);
    }
}
