//! vt-lint fixture (scope: protocol path) — D1 true negatives.
//!
//! No markers: the analyzer must produce zero findings here. Every shape
//! below is an idiom the workspace actually uses to keep hash tables out
//! of ordered protocol decisions.

use std::collections::BTreeMap;

struct CreditTable {
    held: FxHashMap<u64, u32>,
    ordered: BTreeMap<u64, u32>,
}

impl CreditTable {
    // Order-insensitive consumers in the same statement.
    fn population(&self) -> usize {
        self.held.keys().count()
    }

    fn total(&self) -> u64 {
        self.held.values().map(|&v| u64::from(v)).sum()
    }

    fn knows(&self, node: u64) -> bool {
        self.held.contains_key(&node)
    }

    // Collect-then-sort in the immediately following statement.
    fn sorted_nodes(&self) -> Vec<u64> {
        let mut v: Vec<u64> = self.held.keys().copied().collect();
        v.sort_unstable();
        v
    }

    // BTree containers iterate in key order: always fine.
    fn walk_ordered(&self) -> Vec<u64> {
        let mut out = Vec::new();
        for (node, _credits) in self.ordered.iter() {
            out.push(*node);
        }
        out
    }
}

// Prose mentioning HashMap iteration or `for x in map.keys()` inside a
// comment or string must never fire: the lexer sees code, not text.
fn describe() -> &'static str {
    "iterating a HashMap with .keys() would be unordered"
}
