//! Open-system serving: differential, determinism, golden and regression
//! coverage.
//!
//! The serving layer's cardinal promise is that it is *free when off*: a
//! `ServeConfig` with `enabled = false` must not perturb a single event of
//! the closed-system timeline, whatever values its other fields hold. The
//! differential property here pins that, a replay property pins that serving
//! runs themselves are bit-reproducible (arrival instants, sheds, jittered
//! retransmissions and all), a golden snapshot pins the flash-crowd overload
//! cell byte-for-byte, and a regression test pins the load-triggered
//! re-pack's exactly-once ledger.
//!
//! Regenerate the snapshot after an intentional model change with
//!
//! ```text
//! VT_UPDATE_GOLDEN=1 cargo test --test serving_differential
//! ```

use proptest::prelude::*;
use std::path::{Path, PathBuf};
use vt_apps::serve::{self, ServeScenarioConfig};
use vt_armci::{
    Action, ArrivalProcess, Op, Rank, Report, RuntimeConfig, ScriptProgram, ServeConfig, SimTime,
    Simulation,
};
use vt_core::TopologyKind;

// ---- differential: disabled serving never leaks into the timeline --------

/// A compact encoding of one random closed workload plus random (disabled)
/// serving parameters.
#[derive(Clone, Debug)]
struct DiffSpec {
    kind: TopologyKind,
    n_procs: u32,
    ppn: u32,
    ops_per_rank: u32,
    seed: u64,
    // Arbitrary serve fields that must all be inert while `enabled` is off.
    rate: f64,
    queue_cap: u32,
    retry_budget: u32,
    load_repack: bool,
}

fn diff_strategy() -> impl Strategy<Value = DiffSpec> {
    (
        prop_oneof![
            Just(TopologyKind::Fcg),
            Just(TopologyKind::Mfcg),
            Just(TopologyKind::Cfcg),
        ],
        2u32..40,
        1u32..5,
        1u32..5,
        any::<u64>(),
        1u32..1_000_000,
        1u32..16,
        0u32..64,
        any::<bool>(),
    )
        .prop_map(
            |(
                kind,
                n_procs,
                ppn,
                ops_per_rank,
                seed,
                rate,
                queue_cap,
                retry_budget,
                load_repack,
            )| {
                DiffSpec {
                    kind,
                    n_procs,
                    ppn,
                    ops_per_rank,
                    seed,
                    rate: f64::from(rate),
                    queue_cap,
                    retry_budget,
                    load_repack,
                }
            },
        )
}

fn run_hotspot(spec: &DiffSpec, serve: Option<ServeConfig>) -> Report {
    let mut cfg = RuntimeConfig::new(spec.n_procs, spec.kind);
    cfg.procs_per_node = spec.ppn;
    cfg.seed = spec.seed;
    if let Some(s) = serve {
        cfg.serve = s;
    }
    let ops = spec.ops_per_rank;
    Simulation::build(cfg, move |_| {
        let mut actions = Vec::new();
        for _ in 0..ops {
            actions.push(Action::Op(Op::fetch_add(Rank(0), 1)));
        }
        actions.push(Action::WaitAll);
        ScriptProgram::new(actions)
    })
    .run()
    .expect("closed hotspot workload completes")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// `enabled = false` makes every other serve field inert: the timeline
    /// is event-for-event identical to a default-config run.
    #[test]
    fn disabled_serving_is_byte_identical(spec in diff_strategy()) {
        let base = run_hotspot(&spec, None);
        let mut off = ServeConfig::on(ArrivalProcess::steady(spec.rate), SimTime::from_millis(5));
        off.enabled = false;
        off.queue_cap = spec.queue_cap;
        off.retry_budget = spec.retry_budget;
        off.load_repack = spec.load_repack;
        let with_cfg = run_hotspot(&spec, Some(off));
        prop_assert_eq!(base.finish_time, with_cfg.finish_time);
        prop_assert_eq!(base.events, with_cfg.events);
        prop_assert_eq!(&base.net, &with_cfg.net);
        prop_assert_eq!(&base.fetch_finals, &with_cfg.fetch_finals);
        prop_assert_eq!(base.credit_leaks, with_cfg.credit_leaks);
        prop_assert_eq!(with_cfg.serve, vt_armci::ServeStats::default());
        prop_assert!(with_cfg.serve_latencies_us.is_empty());
    }

    /// Serving runs — arrivals, sheds, decorrelated-jitter retransmissions,
    /// guard trips — replay bit-identically under the same seed.
    #[test]
    fn serving_replays_bit_identically(
        seed in any::<u64>(),
        rate_k in 5u32..400,
        queue_cap in 1u32..6,
    ) {
        let mut cfg = ServeScenarioConfig::steady_small();
        cfg.seed = seed;
        cfg.arrivals = ArrivalProcess::steady(f64::from(rate_k) * 1000.0);
        cfg.queue_cap = queue_cap;
        let a = serve::run(&cfg);
        let b = serve::run(&cfg);
        prop_assert_eq!(a.stats, b.stats);
        prop_assert_eq!(a.exec_seconds, b.exec_seconds);
        prop_assert_eq!(a.p999_us, b.p999_us);
        prop_assert_eq!(a.hot_final, b.hot_final);
        prop_assert!(a.exactly_once);
        prop_assert_eq!(a.credit_leaks, 0);
    }
}

// ---- golden: the flash-crowd overload cell -------------------------------

fn golden_path(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

/// The scaled-down flash-crowd cell the snapshot pins: 32 clients over a
/// 16-node MFCG, a 10x spike in the middle of the horizon, queues tight
/// enough that the spike sheds.
fn golden_flash_config() -> ServeScenarioConfig {
    let mut cfg = ServeScenarioConfig::flash_crowd();
    cfg.nodes = 16;
    cfg.ppn = 2;
    cfg.arrivals = ArrivalProcess::flash_crowd(
        4_000.0,
        10.0,
        SimTime::from_millis(2),
        SimTime::from_millis(1),
    );
    cfg.horizon = SimTime::from_millis(4);
    cfg.queue_cap = 2;
    // Tight enough that spike-inflated latencies cross it, exercising the
    // jittered-retransmission and dedup paths at this small scale.
    cfg.retry_timeout = SimTime::from_micros(150);
    cfg
}

/// FNV-1a stamp of the snapshot's configuration, so a changed cell cannot
/// silently overwrite the committed baseline.
fn config_stamp(cfg: &ServeScenarioConfig) -> String {
    let descriptor = format!("{cfg:?}");
    let mut h: u64 = 0xcbf29ce484222325;
    for b in descriptor.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    format!("{h:016x}")
}

#[test]
fn flash_crowd_matches_golden() {
    let cfg = golden_flash_config();
    let o = serve::run(&cfg);
    // The cell must actually exercise the overload path before its render
    // is worth pinning.
    assert!(o.sheds > 0, "flash spike did not overload: {o:?}");
    assert!(o.retries > 0, "no retransmissions under overload: {o:?}");
    assert!(o.dedup_hits > 0, "no dedup pressure past saturation: {o:?}");
    assert!(o.exactly_once, "{o:?}");
    assert_eq!(o.credit_leaks, 0);
    let actual = format!(
        "# config {}\n{}",
        config_stamp(&cfg),
        serve::render(&cfg, &o)
    );
    let path = golden_path("serve_flash.txt");
    if std::env::var_os("VT_UPDATE_GOLDEN").is_some() {
        let first = std::fs::read_to_string(&path)
            .ok()
            .and_then(|s| s.lines().next().map(str::to_string));
        if let Some(old) = first.as_deref().and_then(|l| l.strip_prefix("# config ")) {
            assert_eq!(
                old,
                config_stamp(&cfg),
                "refusing to overwrite serve_flash.txt: it was generated \
                 under a different scenario configuration"
            );
        }
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden snapshot {}: {e}\n\
             regenerate with VT_UPDATE_GOLDEN=1 cargo test --test serving_differential",
            path.display()
        )
    });
    assert_eq!(
        expected, actual,
        "serve_flash.txt drifted; if intentional, regenerate with \
         VT_UPDATE_GOLDEN=1 cargo test --test serving_differential"
    );
}

// ---- regression: load-triggered re-pack stays exactly-once ---------------

#[test]
fn load_repack_under_traffic_is_exactly_once_and_certified() {
    let cfg = ServeScenarioConfig::load_repack_hotspot();
    let a = serve::run(&cfg);
    assert_eq!(a.load_repacks, 1, "{a:?}");
    assert_eq!(a.epoch_bumps, 1, "{a:?}");
    assert_eq!(a.repack_kind, Some(TopologyKind::Mfcg), "{a:?}");
    assert!(a.repack_certified, "{a:?}");
    assert!(a.exactly_once, "{a:?}");
    assert_eq!(a.credit_leaks, 0);
    // The commit happened under live traffic, not at quiescence.
    assert!(a.completed > 0 && a.arrivals > a.completed, "{a:?}");
    // And the whole episode replays bit-identically.
    let b = serve::run(&cfg);
    assert_eq!(a.stats, b.stats);
    assert_eq!(a.exec_seconds, b.exec_seconds);
    assert_eq!(a.hot_final, b.hot_final);
}

// ---- regression: goodput does not collapse past saturation ---------------

#[test]
fn goodput_plateaus_past_saturation() {
    let base = ServeScenarioConfig::steady_small();
    let points = serve::curve(&base, &[1.0, 6.0, 12.0, 24.0]);
    // Shed fraction grows monotonically along the overload ramp...
    assert!(points[3].shed_frac > points[1].shed_frac, "{points:?}");
    // ...while goodput holds: the most-overloaded cell keeps at least half
    // the goodput of the first saturated cell (metastable collapse would
    // send it toward zero).
    let saturated = points[1].goodput_per_sec;
    assert!(saturated > 0.0, "{points:?}");
    assert!(
        points[3].goodput_per_sec >= 0.5 * saturated,
        "goodput collapsed past saturation: {points:?}"
    );
}
