//! Differential tests of request coalescing: the same workload run with
//! coalescing on and off must be semantically indistinguishable — identical
//! final fetch-&-add ground truth, per-rank operation accounting and CHT
//! service/forward totals — with only message and timing counters free to
//! differ. Coalesced runs must additionally reproduce bit-identically and
//! compose with the fault-recovery machinery.

use proptest::prelude::*;
use vt_armci::{
    Action, CoalesceConfig, FaultPlan, FaultStats, Op, Rank, Report, RuntimeConfig, ScriptProgram,
    SimTime, Simulation,
};
use vt_core::TopologyKind;

/// A compact encoding of one random workload plus a coalescing budget.
#[derive(Clone, Debug)]
struct DiffSpec {
    kind: TopologyKind,
    n_procs: u32,
    ppn: u32,
    buffers: u32,
    ops_per_rank: u32,
    op_mix: u8,
    target_seed: u32,
    /// Index into [`MAX_BYTES_CHOICES`].
    max_bytes_pick: u8,
}

/// Envelope budgets exercised: far below one request pair, mid-size, and
/// the full 16-KiB default.
const MAX_BYTES_CHOICES: [u64; 3] = [256, 1024, 16 * 1024];

fn diff_strategy() -> impl Strategy<Value = DiffSpec> {
    (
        prop_oneof![
            Just(TopologyKind::Fcg),
            Just(TopologyKind::Mfcg),
            Just(TopologyKind::Cfcg),
            Just(TopologyKind::Hypercube),
        ],
        4u32..60,
        1u32..5,
        1u32..4,
        1u32..7,
        any::<u8>(),
        any::<u32>(),
        0u8..3,
    )
        .prop_map(
            |(kind, n_procs, ppn, buffers, ops_per_rank, op_mix, target_seed, max_bytes_pick)| {
                let mut spec = DiffSpec {
                    kind,
                    n_procs,
                    ppn,
                    buffers,
                    ops_per_rank,
                    op_mix,
                    target_seed,
                    max_bytes_pick,
                };
                // Hypercubes only exist over power-of-two populations; snap
                // the process count down so every generated spec is valid.
                if spec.kind == TopologyKind::Hypercube {
                    let nodes = spec.n_procs.div_ceil(spec.ppn);
                    let pow2 = 1u32 << (31 - nodes.leading_zeros());
                    spec.n_procs = pow2 * spec.ppn;
                }
                spec
            },
        )
}

/// Half the mix hammers rank 0 with fetch-&-adds (the hot-spot pattern
/// coalescing exists for); the rest spreads CHT-path traffic around.
fn build_op(spec: &DiffSpec, rank: u32, i: u32) -> Op {
    let target = Rank((spec.target_seed.wrapping_add(rank * 31 + i * 7)) % spec.n_procs);
    match (spec.op_mix.wrapping_add(i as u8)) % 6 {
        0 | 3 | 5 => Op::fetch_add(Rank(0), 1),
        1 => Op::put_v(target, 1 + i % 4, 256),
        2 => Op::acc(target, 512),
        _ => Op::get_v(target, 1 + i % 4, 256),
    }
}

fn run_spec(spec: &DiffSpec, coalesce: Option<CoalesceConfig>) -> Report {
    let mut cfg = RuntimeConfig::new(spec.n_procs, spec.kind);
    cfg.procs_per_node = spec.ppn;
    cfg.buffers_per_proc = spec.buffers;
    if let Some(c) = coalesce {
        cfg.coalesce = c;
    }
    let sim = Simulation::build(cfg, |rank| {
        let mut actions = Vec::new();
        for i in 0..spec.ops_per_rank {
            // Async issue builds the queues that make folding possible.
            actions.push(Action::OpAsync(build_op(spec, rank.0, i)));
        }
        actions.push(Action::WaitAll);
        ScriptProgram::new(actions)
    });
    sim.run().expect("workload must never deadlock")
}

fn coalesce_cfg(spec: &DiffSpec) -> CoalesceConfig {
    CoalesceConfig {
        max_bytes: Some(MAX_BYTES_CHOICES[spec.max_bytes_pick as usize]),
        ..CoalesceConfig::on()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Coalescing on vs off: all semantics the application can observe are
    /// identical; only message/timing counters may differ.
    #[test]
    fn coalescing_is_semantically_invisible(spec in diff_strategy()) {
        let off = run_spec(&spec, None);
        let on = run_spec(&spec, Some(coalesce_cfg(&spec)));
        let expect = u64::from(spec.n_procs) * u64::from(spec.ops_per_rank);
        prop_assert_eq!(off.metrics.total_ops(), expect);
        prop_assert_eq!(on.metrics.total_ops(), expect);
        for (a, b) in off.metrics.per_rank.iter().zip(&on.metrics.per_rank) {
            prop_assert_eq!(a.ops, b.ops);
        }
        // Ground truth: the final fetch-&-add counters are bit-identical.
        prop_assert_eq!(&off.fetch_finals, &on.fetch_finals);
        // The CHT performed exactly the same logical work.
        prop_assert_eq!(off.cht_totals.serviced, on.cht_totals.serviced);
        prop_assert_eq!(off.cht_totals.forwarded, on.cht_totals.forwarded);
        // Neither run saw a fault, failure or lost rank.
        prop_assert!(off.failures.is_empty() && on.failures.is_empty());
        prop_assert_eq!(off.faults, FaultStats::default());
        prop_assert_eq!(on.faults, FaultStats::default());
        // With coalescing off, every forward is a physical message and no
        // envelope counter moves.
        prop_assert_eq!(off.cht_totals.fwd_messages, off.cht_totals.forwarded);
        prop_assert_eq!(off.coalesce, vt_armci::CoalesceStats::default());
        // Coalescing never inflates the physical message count.
        prop_assert!(on.net.messages <= off.net.messages);
        prop_assert!(on.cht_totals.fwd_messages <= on.cht_totals.forwarded);
    }

    /// A coalesced run reproduces bit-identically.
    #[test]
    fn coalesced_runs_replay_bit_identically(spec in diff_strategy()) {
        let a = run_spec(&spec, Some(coalesce_cfg(&spec)));
        let b = run_spec(&spec, Some(coalesce_cfg(&spec)));
        prop_assert_eq!(a.finish_time, b.finish_time);
        prop_assert_eq!(a.net, b.net);
        prop_assert_eq!(a.events, b.events);
        prop_assert_eq!(a.coalesce, b.coalesce);
        prop_assert_eq!(
            a.metrics.mean_latency_by_rank_us(),
            b.metrics.mean_latency_by_rank_us()
        );
    }
}

/// The hot-spot burst over a 3x3 MFCG: ranks 7 and 8 funnel async
/// fetch-&-adds to rank 0 through forwarder node 6.
fn hotspot(rank: Rank) -> ScriptProgram {
    if rank == Rank(7) || rank == Rank(8) {
        let mut script = vec![Action::Compute(SimTime::from_millis(1))];
        script.extend((0..6).map(|_| Action::OpAsync(Op::fetch_add(Rank(0), 1))));
        script.push(Action::WaitAll);
        ScriptProgram::new(script)
    } else {
        // Keep the idle ranks running so a crash catches them mid-program.
        ScriptProgram::new(vec![Action::Compute(SimTime::from_millis(2))])
    }
}

#[test]
fn coalescing_composes_with_fault_recovery() {
    // Kill the forwarder the coalesced envelopes would travel through
    // before any traffic starts: recovery must reroute every member and
    // deliver each fetch-&-add exactly once.
    let mut cfg = RuntimeConfig::new(9, TopologyKind::Mfcg);
    cfg.procs_per_node = 1;
    cfg.coalesce = CoalesceConfig::on();
    let plan = FaultPlan::new().crash_node(SimTime::ZERO, 6);
    let report = Simulation::build_with_faults(cfg, hotspot, &plan)
        .run()
        .expect("faulted coalesced run must terminate");
    assert_eq!(report.metrics.total_ops(), 12, "both bursts complete");
    assert_eq!(report.fetch_finals[0], 12);
    assert!(report.failures.is_empty(), "{:?}", report.failures);
    assert!(report.faults.reroutes >= 1, "{:?}", report.faults);
    assert_eq!(report.lost_ranks, vec![6]);
}

#[test]
fn faulted_coalesced_runs_replay_bit_identically() {
    let run = || {
        let mut cfg = RuntimeConfig::new(9, TopologyKind::Mfcg);
        cfg.procs_per_node = 1;
        cfg.coalesce = CoalesceConfig::on();
        let plan = FaultPlan::new().crash_node(SimTime::ZERO, 6);
        Simulation::build_with_faults(cfg, hotspot, &plan)
            .run()
            .expect("must terminate")
    };
    let (a, b) = (run(), run());
    assert_eq!(a.finish_time, b.finish_time);
    assert_eq!(a.net, b.net);
    assert_eq!(a.events, b.events);
    assert_eq!(a.faults, b.faults);
    assert_eq!(a.coalesce, b.coalesce);
}
