//! Integration tests at realistic scale for the paper's contention results
//! (Figs. 6/7 shapes). These run the full stack — topology, machine model,
//! runtime, workload — at the paper's 1 024-process scale with a sparse
//! measurement stride to stay fast in debug builds.

use vt_apps::contention::{run, ContentionConfig, OpSpec, Scenario};
use vt_core::TopologyKind;

fn cfg(topology: TopologyKind, op: OpSpec, scenario: Scenario) -> ContentionConfig {
    ContentionConfig {
        measure_stride: 96,
        ..ContentionConfig::paper(topology, op, scenario)
    }
}

#[test]
fn fcg_collapses_under_hot_spot_contention() {
    // Paper §V-B2: vectored put degraded "by nearly two orders of
    // magnitude" under contention inside FCG.
    let quiet = run(&cfg(
        TopologyKind::Fcg,
        OpSpec::fetch_add(),
        Scenario::NoContention,
    ));
    let loud = run(&cfg(
        TopologyKind::Fcg,
        OpSpec::fetch_add(),
        Scenario::pct20(),
    ));
    let ratio = loud.mean_us() / quiet.mean_us();
    assert!(
        ratio > 50.0,
        "FCG should degrade by ~two orders of magnitude, got {ratio:.1}x \
         ({:.1} -> {:.1} us)",
        quiet.mean_us(),
        loud.mean_us()
    );
    // The BEER mechanism must be engaged: hundreds of interleaved source
    // nodes thrash the stream table.
    assert!(loud.stream_misses > 10_000, "misses {}", loud.stream_misses);
}

#[test]
fn mfcg_attenuates_contention() {
    // Paper §V-B3: "With 20% contention, it becomes faster to complete
    // atomic operations for nearly all processes using MFCG than FCG."
    let fcg = run(&cfg(
        TopologyKind::Fcg,
        OpSpec::fetch_add(),
        Scenario::pct20(),
    ));
    let mfcg = run(&cfg(
        TopologyKind::Mfcg,
        OpSpec::fetch_add(),
        Scenario::pct20(),
    ));
    assert!(
        mfcg.mean_us() * 3.0 < fcg.mean_us(),
        "MFCG must be well ahead under contention: mfcg {:.1} vs fcg {:.1}",
        mfcg.mean_us(),
        fcg.mean_us()
    );
    // ... and for nearly all individual ranks, not just on average.
    let better = mfcg
        .points
        .iter()
        .zip(&fcg.points)
        .filter(|((ra, a), (rb, b))| {
            assert_eq!(ra, rb);
            a < b
        })
        .count();
    assert!(
        better * 10 >= mfcg.points.len() * 9,
        "only {better}/{} ranks faster under MFCG",
        mfcg.points.len()
    );
}

#[test]
fn no_contention_ranking_follows_forwarding_depth() {
    // Paper Figs. 6a/6d/7a/7d: without contention the direct FCG path is
    // fastest and each extra forwarding step costs more.
    let mean = |kind| run(&cfg(kind, OpSpec::vector_put(), Scenario::NoContention)).mean_us();
    let fcg = mean(TopologyKind::Fcg);
    let mfcg = mean(TopologyKind::Mfcg);
    let cfcg = mean(TopologyKind::Cfcg);
    let hc = mean(TopologyKind::Hypercube);
    assert!(
        fcg < mfcg && mfcg < cfcg && cfcg < hc,
        "expected fcg < mfcg < cfcg < hypercube, got {fcg:.1} {mfcg:.1} {cfcg:.1} {hc:.1}"
    );
    // Hypercube's many forwarding steps make it a poor trade-off (§V-B2).
    assert!(hc > 2.5 * fcg);
}

#[test]
fn contention_at_11_percent_sits_below_20_percent() {
    let low = run(&cfg(
        TopologyKind::Fcg,
        OpSpec::fetch_add(),
        Scenario::pct11(),
    ));
    let high = run(&cfg(
        TopologyKind::Fcg,
        OpSpec::fetch_add(),
        Scenario::pct20(),
    ));
    assert!(
        low.mean_us() < high.mean_us(),
        "11% ({:.1}) must hurt less than 20% ({:.1})",
        low.mean_us(),
        high.mean_us()
    );
}

#[test]
fn latency_rises_with_rank_distance_under_linear_placement() {
    // Paper Figs. 6a/7a: completion time grows with rank because physical
    // distance to rank 0 grows (linear placement on the torus).
    let out = run(&cfg(
        TopologyKind::Fcg,
        OpSpec::fetch_add(),
        Scenario::NoContention,
    ));
    let n = out.points.len();
    assert!(n >= 8);
    let head: f64 = out.points[..n / 4].iter().map(|&(_, y)| y).sum::<f64>() / (n / 4) as f64;
    let tail: f64 =
        out.points[3 * n / 4..].iter().map(|&(_, y)| y).sum::<f64>() / (n - 3 * n / 4) as f64;
    assert!(
        tail > head * 1.1,
        "expected a distance slope: head {head:.1} tail {tail:.1}"
    );
}

#[test]
fn mfcg_no_contention_shows_direct_and_forwarded_groups() {
    // Paper Fig. 6a: "the performance numbers from all processes form
    // several distinct curves, representing differences in their
    // (virtual-) topological relationship with respect to Rank 0."
    let out = run(&cfg(
        TopologyKind::Mfcg,
        OpSpec::fetch_add(),
        Scenario::NoContention,
    ));
    // Split points by whether their node is directly connected to node 0.
    let topo = TopologyKind::Mfcg.build(256);
    use vt_core::VirtualTopology;
    let (mut direct, mut forwarded) = (Vec::new(), Vec::new());
    for &(rank, us) in &out.points {
        let node = rank / 4;
        if topo.has_edge(node, 0) {
            direct.push(us);
        } else {
            forwarded.push(us);
        }
    }
    assert!(!direct.is_empty() && !forwarded.is_empty());
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    assert!(
        mean(&forwarded) > mean(&direct) * 1.3,
        "forwarded group ({:.1}) must sit clearly above direct group ({:.1})",
        mean(&forwarded),
        mean(&direct)
    );
}
