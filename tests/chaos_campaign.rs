//! Integration tests of the chaos-campaign harness: the campaign report
//! is a pure function of its configuration (identical at any worker
//! count), cells are independent of campaign order, every drawn schedule
//! validates, and the greedy shrinker reduces failing schedules to
//! minimal reproducers without ever leaving an invalid plan behind.

use proptest::prelude::*;
use vt_apps::chaos::{self, ChaosConfig};
use vt_armci::FaultPlan;
use vt_simnet::SimTime;

fn plan_elements(plan: &FaultPlan) -> usize {
    plan.node_crashes.len()
        + plan.node_restarts.len()
        + plan.partitions.len()
        + plan.drop_windows.len()
        + plan.corrupt_windows.len()
}

/// The campaign report — digests, violations, every headline counter — is
/// byte-identical whether cells run serially, on a few workers, or on one
/// worker per CPU. This is the property the committed
/// `results/ablation_chaos.txt` (and the CI chaos-smoke double-run) rests
/// on.
#[test]
fn campaign_report_is_thread_count_invariant() {
    let outcomes: Vec<_> = [1usize, 3, 0]
        .iter()
        .map(|&threads| {
            let mut cfg = ChaosConfig::quick();
            cfg.threads = threads;
            chaos::run(&cfg)
        })
        .collect();
    let fingerprint = |o: &chaos::ChaosOutcome| {
        o.cells
            .iter()
            .map(|c| format!("{}:{}:{:?}:{}", c.idx, c.digest, c.violations, c.retries))
            .collect::<Vec<_>>()
    };
    let base = fingerprint(&outcomes[0]);
    for o in &outcomes[1..] {
        assert_eq!(fingerprint(o), base);
    }
}

/// A cell's outcome does not depend on the campaign around it: running a
/// drawn cell directly reproduces the digest the full campaign recorded
/// for that cell.
#[test]
fn cells_are_independent_of_campaign_context() {
    let cfg = ChaosConfig::quick();
    let campaign = chaos::run(&cfg);
    let cells = chaos::draw_cells(&cfg);
    for idx in [2usize, 5] {
        let alone = chaos::run_cell(&cells[idx]);
        assert_eq!(alone.digest, campaign.cells[idx].digest, "cell {idx}");
        assert_eq!(alone.violations, campaign.cells[idx].violations);
    }
}

/// The quick fixed-seed campaign — the CI smoke gate — holds every
/// invariant oracle and produces no minimized reproducer.
#[test]
fn quick_campaign_holds_every_invariant() {
    let out = chaos::run(&ChaosConfig::quick());
    assert_eq!(out.failing_cells(), 0, "{:?}", out.cells);
    assert!(out.minimized.is_none());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every schedule the campaign can draw — any seed, any cell index,
    /// any node population — passes `FaultPlan::validate`.
    #[test]
    fn drawn_schedules_always_validate(
        seed in any::<u64>(),
        idx in 0u32..256,
        n_nodes in 2u32..17,
    ) {
        let plan = chaos::draw_plan(seed, idx, n_nodes);
        prop_assert!(plan.validate().is_ok(), "{plan:?}");
    }

    /// Shrinking a drawn schedule against a synthetic predicate yields a
    /// plan that still validates, still fails, and is no larger — and when
    /// the predicate needs only one element class, everything else is
    /// stripped.
    #[test]
    fn shrinker_strips_everything_the_failure_does_not_need(
        seed in any::<u64>(),
        idx in 0u32..64,
    ) {
        let plan = chaos::draw_plan(seed, idx, 8)
            .corrupt_window(SimTime::ZERO, SimTime::from_millis(3), 0.1);
        prop_assert!(plan.validate().is_ok());
        // Synthetic failure: the plan "fails" while any corruption window
        // survives. The guilty window is irreducible; all else must go.
        let shrunk = chaos::shrink_plan(&plan, |p| !p.corrupt_windows.is_empty());
        prop_assert!(shrunk.validate().is_ok(), "{shrunk:?}");
        prop_assert_eq!(shrunk.corrupt_windows.len(), 1, "{:?}", shrunk);
        prop_assert!(shrunk.node_crashes.is_empty(), "{shrunk:?}");
        prop_assert!(shrunk.node_restarts.is_empty(), "{shrunk:?}");
        prop_assert!(shrunk.partitions.is_empty(), "{shrunk:?}");
        prop_assert!(shrunk.drop_windows.is_empty(), "{shrunk:?}");
        prop_assert!(plan_elements(&shrunk) <= plan_elements(&plan));
    }

    /// Shrinking never strands a reboot without its crash: for any drawn
    /// schedule and a predicate keyed on an arbitrary surviving element,
    /// every intermediate acceptance re-validates, so the final plan does
    /// too.
    #[test]
    fn shrinker_output_always_validates(
        seed in any::<u64>(),
        idx in 0u32..64,
        keep in 0u8..4,
    ) {
        let plan = chaos::draw_plan(seed, idx, 8);
        let shrunk = chaos::shrink_plan(&plan, |p| match keep {
            0 => !p.node_crashes.is_empty(),
            1 => !p.partitions.is_empty(),
            2 => !p.drop_windows.is_empty(),
            _ => plan_elements(p) > 1,
        });
        prop_assert!(shrunk.validate().is_ok(), "{shrunk:?}");
        prop_assert!(plan_elements(&shrunk) <= plan_elements(&plan));
    }
}
