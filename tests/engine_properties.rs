//! Property-based tests of the runtime engine: randomly generated
//! workloads over randomly shaped (often partially populated) topologies
//! must always complete, conserve operation counts, and reproduce
//! bit-identically.

use proptest::prelude::*;
use vt_armci::{Action, Op, Rank, Report, RuntimeConfig, ScriptProgram, Simulation};
use vt_core::TopologyKind;

/// A compact encoding of one random workload.
#[derive(Clone, Debug)]
struct WorkloadSpec {
    kind: TopologyKind,
    n_procs: u32,
    ppn: u32,
    buffers: u32,
    ops_per_rank: u32,
    op_mix: u8,
    target_seed: u32,
    with_barrier: bool,
}

fn workload_strategy() -> impl Strategy<Value = WorkloadSpec> {
    (
        prop_oneof![
            Just(TopologyKind::Fcg),
            Just(TopologyKind::Mfcg),
            Just(TopologyKind::Cfcg),
        ],
        2u32..60,
        1u32..5,
        1u32..4,
        1u32..6,
        any::<u8>(),
        any::<u32>(),
        any::<bool>(),
    )
        .prop_map(
            |(kind, n_procs, ppn, buffers, ops_per_rank, op_mix, target_seed, with_barrier)| {
                WorkloadSpec {
                    kind,
                    n_procs,
                    ppn,
                    buffers,
                    ops_per_rank,
                    op_mix,
                    target_seed,
                    with_barrier,
                }
            },
        )
}

fn build_op(spec: &WorkloadSpec, rank: u32, i: u32) -> Op {
    let target = Rank((spec.target_seed.wrapping_add(rank * 31 + i * 7)) % spec.n_procs);
    match (spec.op_mix.wrapping_add(i as u8)) % 5 {
        0 => Op::put_v(target, 1 + i % 4, 256),
        1 => Op::get_v(target, 1 + i % 4, 256),
        2 => Op::acc(target, 512),
        3 => Op::fetch_add(target, 1),
        _ => Op::put(target, 4096),
    }
}

fn run_spec(spec: &WorkloadSpec) -> Report {
    let mut cfg = RuntimeConfig::new(spec.n_procs, spec.kind);
    cfg.procs_per_node = spec.ppn;
    cfg.buffers_per_proc = spec.buffers;
    let sim = Simulation::build(cfg, |rank| {
        let mut actions = Vec::new();
        for i in 0..spec.ops_per_rank {
            let op = build_op(spec, rank.0, i);
            if i % 2 == 0 {
                actions.push(Action::Op(op));
            } else {
                actions.push(Action::OpAsync(op));
            }
        }
        actions.push(Action::WaitAll);
        if spec.with_barrier {
            actions.push(Action::Barrier);
        }
        ScriptProgram::new(actions)
    });
    sim.run().expect("random workload must never deadlock")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any random mix of blocking/async one-sided ops over any topology and
    /// population completes, with every op accounted for.
    #[test]
    fn random_workloads_complete_and_conserve_ops(spec in workload_strategy()) {
        let report = run_spec(&spec);
        prop_assert_eq!(
            report.metrics.total_ops(),
            u64::from(spec.n_procs) * u64::from(spec.ops_per_rank)
        );
        // Every rank finished.
        for s in &report.metrics.per_rank {
            prop_assert_eq!(s.ops, u64::from(spec.ops_per_rank));
        }
    }

    /// Identical specs reproduce identical timelines (determinism).
    #[test]
    fn runs_are_deterministic(spec in workload_strategy()) {
        let a = run_spec(&spec);
        let b = run_spec(&spec);
        prop_assert_eq!(a.finish_time, b.finish_time);
        prop_assert_eq!(a.net, b.net);
        prop_assert_eq!(a.events, b.events);
        prop_assert_eq!(
            a.metrics.mean_latency_by_rank_us(),
            b.metrics.mean_latency_by_rank_us()
        );
    }

    /// Fetch-&-add responses form a permutation of 0..k when k ranks each
    /// add 1 to the same counter — atomicity at the serial CHT.
    #[test]
    fn fetch_add_serialises_correctly(n in 2u32..40, kind_pick in 0u8..3) {
        let kind = [TopologyKind::Fcg, TopologyKind::Mfcg, TopologyKind::Cfcg]
            [kind_pick as usize];
        let mut cfg = RuntimeConfig::new(n, kind);
        cfg.procs_per_node = 2;
        use std::sync::Mutex;
        use std::sync::Arc;
        let seen = Arc::new(Mutex::new(Vec::<i64>::new()));
        let sim = Simulation::build(cfg, |rank| {
            let seen = seen.clone();
            let mut state = 0u8;
            vt_armci::ClosureProgram::new(move |ctx: &vt_armci::ProcCtx| {
                if rank == Rank(0) {
                    return Action::Done;
                }
                match state {
                    0 => {
                        state = 1;
                        Action::Op(Op::fetch_add(Rank(0), 1))
                    }
                    _ => {
                        if state == 1 {
                            state = 2;
                            seen.lock().unwrap().push(ctx.last_fetch.expect("value"));
                        }
                        Action::Done
                    }
                }
            })
        });
        sim.run().expect("no deadlock");
        let mut vals = seen.lock().unwrap().clone();
        vals.sort_unstable();
        let expected: Vec<i64> = (0..i64::from(n) - 1).collect();
        prop_assert_eq!(vals, expected);
    }
}
