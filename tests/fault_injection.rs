//! Property-based tests of the fault-injection layer and the self-healing
//! runtime: deterministic replay under identical plans, zero cost when the
//! plan is empty, guaranteed termination (complete or diagnose, never
//! hang) under arbitrary fault schedules, and acyclicity of the
//! escape-class route-around order for arbitrary dead sets.

use proptest::prelude::*;
use vt_armci::{Action, FaultPlan, Op, Rank, Report, RuntimeConfig, ScriptProgram, Simulation};
use vt_core::{graph, ldf, TopologyKind, VirtualTopology};
use vt_simnet::SimTime;

/// One random faulted workload: a hot-spot fetch-&-add/accumulate mix over
/// a random topology plus a random fault schedule.
#[derive(Clone, Debug)]
struct FaultSpec {
    kind: TopologyKind,
    n_procs: u32,
    ppn: u32,
    ops_per_rank: u32,
    op_mix: u8,
    /// Fault toggles: bit 0 = crash a node, bit 1 = drop window, bit 2 =
    /// degrade a link (the vendored proptest has no `option::of`).
    fault_mask: u8,
    crash_pick: (u32, u64),
    drop: (u64, u64, u32),
    degrade: (u32, u64),
}

fn fault_spec() -> impl Strategy<Value = FaultSpec> {
    (
        prop_oneof![
            Just(TopologyKind::Fcg),
            Just(TopologyKind::Mfcg),
            Just(TopologyKind::Cfcg),
            Just(TopologyKind::Hypercube),
        ],
        2u32..48,
        1u32..4,
        1u32..5,
        any::<u8>(),
        any::<u8>(),
        (any::<u32>(), 0u64..400),
        (0u64..200, 1u64..400, 0u32..101),
        (any::<u32>(), 0u64..300),
    )
        .prop_map(
            |(kind, n_procs, ppn, ops_per_rank, op_mix, fault_mask, crash_pick, drop, degrade)| {
                FaultSpec {
                    kind,
                    n_procs,
                    ppn,
                    ops_per_rank,
                    op_mix,
                    fault_mask,
                    crash_pick,
                    drop,
                    degrade,
                }
            },
        )
}

fn nodes_of(spec: &FaultSpec) -> u32 {
    spec.n_procs.div_ceil(spec.ppn)
}

/// Hypercube only supports power-of-two node counts; snap the process
/// count down so every generated spec is valid.
fn normalise(mut spec: FaultSpec) -> FaultSpec {
    if spec.kind == TopologyKind::Hypercube {
        let nodes = nodes_of(&spec);
        let pow2 = 1u32 << (31 - nodes.leading_zeros());
        spec.n_procs = pow2 * spec.ppn;
    }
    spec
}

fn plan_of(spec: &FaultSpec) -> FaultPlan {
    let nodes = nodes_of(spec);
    let mut plan = FaultPlan::new();
    if spec.fault_mask & 1 != 0 && nodes > 1 {
        // Never crash node 0: the hot target's death makes every op fail,
        // which is legal but uninteresting for most cases.
        let (pick, at_us) = spec.crash_pick;
        plan = plan.crash_node(SimTime::from_micros(at_us), 1 + pick % (nodes - 1));
    }
    if spec.fault_mask & 2 != 0 {
        let (from_us, len_us, pct) = spec.drop;
        plan = plan.drop_window(
            SimTime::from_micros(from_us),
            SimTime::from_micros(from_us + len_us),
            f64::from(pct) / 100.0,
        );
    }
    if spec.fault_mask & 4 != 0 {
        let (pick, at_us) = spec.degrade;
        plan = plan.degrade_link(
            pick % nodes,
            (pick % 6) as u8,
            SimTime::from_micros(at_us),
            None,
            4.0,
        );
    }
    plan
}

fn config_of(spec: &FaultSpec) -> RuntimeConfig {
    let mut cfg = RuntimeConfig::new(spec.n_procs, spec.kind);
    cfg.procs_per_node = spec.ppn;
    // Short timeouts keep retry rounds inside test budgets.
    cfg.retry.timeout = SimTime::from_micros(200);
    cfg
}

fn program_of(spec: &FaultSpec, rank: Rank) -> ScriptProgram {
    let mut actions = vec![Action::Compute(SimTime::from_micros(
        1 + u64::from(rank.0 % 5),
    ))];
    for i in 0..spec.ops_per_rank {
        let target = Rank((u32::from(spec.op_mix) + rank.0 * 13 + i * 5) % spec.n_procs);
        actions.push(Action::Op(match (spec.op_mix.wrapping_add(i as u8)) % 3 {
            0 => Op::fetch_add(Rank(0), 1),
            1 => Op::acc(target, 512),
            _ => Op::put_v(target, 2, 256),
        }));
    }
    ScriptProgram::new(actions)
}

fn run_spec(spec: &FaultSpec, plan: &FaultPlan) -> Report {
    let sim = Simulation::build_with_faults(config_of(spec), |rank| program_of(spec, rank), plan);
    sim.run()
        .expect("faulted runs must terminate: complete or diagnose, never hang")
}

/// The same run built without any fault layer at all.
fn run_plain(spec: &FaultSpec) -> Report {
    Simulation::build(config_of(spec), |rank| program_of(spec, rank))
        .run()
        .expect("plain runs must complete")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// The same (workload, fault plan) pair replays bit-identically.
    #[test]
    fn identical_plans_replay_identically(spec in fault_spec()) {
        let spec = normalise(spec);
        let plan = plan_of(&spec);
        let a = run_spec(&spec, &plan);
        let b = run_spec(&spec, &plan);
        prop_assert_eq!(a.finish_time, b.finish_time);
        prop_assert_eq!(a.net, b.net);
        prop_assert_eq!(a.events, b.events);
        prop_assert_eq!(a.faults, b.faults);
        prop_assert_eq!(a.lost_ranks.clone(), b.lost_ranks.clone());
        prop_assert_eq!(a.failures.len(), b.failures.len());
        prop_assert_eq!(
            a.metrics.mean_latency_by_rank_us(),
            b.metrics.mean_latency_by_rank_us()
        );
    }

    /// An empty fault plan is free: the run is indistinguishable from one
    /// without the fault layer, down to the event count.
    #[test]
    fn empty_plan_changes_nothing(spec in fault_spec()) {
        let spec = normalise(spec);
        let faulted = run_spec(&spec, &FaultPlan::default());
        let plain = run_plain(&spec);
        prop_assert_eq!(faulted.finish_time, plain.finish_time);
        prop_assert_eq!(faulted.net, plain.net);
        prop_assert_eq!(faulted.events, plain.events);
        prop_assert_eq!(faulted.faults, vt_armci::FaultStats::default());
        prop_assert!(faulted.failures.is_empty());
        prop_assert_eq!(faulted.availability(), 1.0);
    }

    /// Whatever the fault schedule, the run terminates and accounts for
    /// every rank: finished, lost with its node, or failed with a
    /// diagnostic. No silent loss, no hangs.
    #[test]
    fn any_fault_schedule_completes_or_diagnoses(spec in fault_spec()) {
        let spec = normalise(spec);
        let plan = plan_of(&spec);
        let report = run_spec(&spec, &plan);
        prop_assert!(report.availability() >= 0.0 && report.availability() <= 1.0);
        // Lost ranks all live on crashed nodes.
        if let Some(at) = plan.node_crashes.first() {
            for &r in &report.lost_ranks {
                prop_assert_eq!(r / spec.ppn, at.node);
            }
        } else {
            prop_assert!(report.lost_ranks.is_empty());
        }
        // Failures carry per-op diagnostics, and each failed op counted.
        prop_assert_eq!(report.faults.failed_ops, report.failures.len() as u64);
        for err in &report.failures {
            let msg = err.to_string();
            prop_assert!(
                msg.contains("unreachable") || msg.contains("timed out"),
                "undiagnostic failure: {}", msg
            );
        }
        // Completed work never exceeds what was issued.
        let issued = u64::from(spec.n_procs) * u64::from(spec.ops_per_rank);
        prop_assert!(report.metrics.total_ops() <= issued);
        // Without faults injected before the end of the run, everything
        // completes (drop p = 0 windows and degraded links lose nothing).
        if plan.is_empty() {
            prop_assert_eq!(report.metrics.total_ops(), issued);
        }
    }

    /// The escape-class route-around order stays acyclic for any dead set:
    /// classed routes between survivors never create a buffer-dependency
    /// cycle, so the recovery path can never deadlock on credits.
    #[test]
    fn route_around_keeps_buffer_dependencies_acyclic(
        kind_pick in 0u8..3,
        nodes_pick in 0u8..3,
        dead_seed in any::<u64>(),
        dead_count in 1usize..4,
    ) {
        let kind = [TopologyKind::Mfcg, TopologyKind::Cfcg, TopologyKind::Hypercube]
            [kind_pick as usize];
        let n = match kind {
            TopologyKind::Mfcg => [16u32, 25, 64][nodes_pick as usize],
            TopologyKind::Cfcg => [8u32, 27, 64][nodes_pick as usize],
            _ => [8u32, 16, 32][nodes_pick as usize],
        };
        prop_assert!(kind.supports(n));
        let topo = kind.build(n);
        let shape = VirtualTopology::shape(&topo).clone();
        let ndims = shape.dims().len() as u8;
        // A random dead set (never the whole machine).
        let mut dead: Vec<u32> = Vec::new();
        let mut state = dead_seed;
        while dead.len() < dead_count.min(n as usize - 2) {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let v = (state >> 33) as u32 % n;
            if !dead.contains(&v) {
                dead.push(v);
            }
        }
        dead.sort_unstable();
        let classes = ndims.max(1);
        let g = graph::classed_dependency_digraph(&topo, classes, |src, dst| {
            if dead.binary_search(&src).is_ok() || dead.binary_search(&dst).is_ok() {
                return None;
            }
            ldf::route_avoiding_classed(&shape, n, src, dst, &dead)
        });
        prop_assert!(
            !g.has_cycle(),
            "{}/{} route-around past {:?} creates a credit cycle",
            kind.name(), n, dead
        );
    }
}
