//! Integration of the Global Arrays layer with the runtime and the virtual
//! topologies: GA patch traffic must decompose, route, forward and complete
//! correctly on every topology, and a GA-style SCF mini-iteration must
//! exercise the same contention behaviour the paper measures.

use vt_armci::{Rank, RuntimeConfig, Simulation};
use vt_core::TopologyKind;
use vt_ga::calls::nxtval;
use vt_ga::{GaCall, GaScript, GlobalArray, Patch};

fn transpose_run(kind: TopologyKind, n_procs: u32) -> vt_armci::Report {
    let ga = GlobalArray::create(n_procs, 1024, 1024, 8);
    let mut cfg = RuntimeConfig::new(n_procs, kind);
    cfg.procs_per_node = 4;
    let sim = Simulation::build(cfg, |rank| {
        let mine = ga.block_of(rank);
        let mirrored = Patch::new(mine.col0, mine.cols, mine.row0, mine.rows);
        GaScript::new(vec![
            GaCall::Sync,
            GaCall::Get(ga, mirrored),
            GaCall::Acc(ga, mirrored),
            GaCall::Sync,
        ])
    });
    sim.run().expect("GA transpose must not deadlock")
}

#[test]
fn ga_transpose_completes_on_every_topology() {
    for kind in TopologyKind::ALL {
        let report = transpose_run(kind, 64);
        // Every rank issues one get + one acc per touched owner; diagonal
        // blocks are a single-owner access, so ops >= 2 per rank.
        assert!(
            report.metrics.total_ops() >= 128,
            "{kind}: only {} ops",
            report.metrics.total_ops()
        );
        // Work must be identical across topologies (same decomposition).
        assert_eq!(
            report.metrics.total_ops(),
            transpose_run(TopologyKind::Fcg, 64).metrics.total_ops(),
            "{kind}: op count differs from FCG"
        );
    }
}

#[test]
fn ga_traffic_forwards_on_lean_topologies() {
    let fcg = transpose_run(TopologyKind::Fcg, 64);
    let hc = transpose_run(TopologyKind::Hypercube, 64);
    assert_eq!(fcg.cht_totals.forwarded, 0);
    assert!(hc.cht_totals.forwarded > 0);
    // Forwarding costs time: the hypercube run cannot be faster.
    assert!(hc.finish_time >= fcg.finish_time);
}

#[test]
fn ga_patches_crossing_many_owners_fan_out() {
    let n_procs = 16u32;
    let ga = GlobalArray::create(n_procs, 256, 256, 8);
    let mut cfg = RuntimeConfig::new(n_procs, TopologyKind::Mfcg);
    cfg.procs_per_node = 2;
    cfg.record_ops = true;
    let full = Patch::new(0, 256, 0, 256);
    let sim = Simulation::build(cfg, |rank| {
        if rank == Rank(0) {
            // One rank reads the whole array: one vectored get per owner.
            GaScript::new(vec![GaCall::Get(ga, full), GaCall::Sync])
        } else {
            GaScript::new(vec![GaCall::Sync])
        }
    });
    let report = sim.run().unwrap();
    assert_eq!(report.metrics.per_rank[0].ops, 16);
    let total_bytes: u64 = ga.get_patch(full).iter().map(|op| op.bytes).sum();
    assert_eq!(total_bytes, 256 * 256 * 8);
}

#[test]
fn ga_scf_mini_iteration_with_nxtval() {
    // A GA-flavoured SCF step: every rank grabs a task id, fetches a block
    // of the density matrix, and accumulates into the Fock matrix.
    let n_procs = 32u32;
    let fock = GlobalArray::create(n_procs, 512, 512, 8);
    let dens = GlobalArray::create(n_procs, 512, 512, 8);
    let mut cfg = RuntimeConfig::new(n_procs, TopologyKind::Mfcg);
    cfg.procs_per_node = 4;
    let sim = Simulation::build(cfg, |rank| {
        let src = dens.block_of(Rank((rank.0 * 7 + 3) % n_procs));
        let dst = fock.block_of(Rank((rank.0 * 11 + 5) % n_procs));
        GaScript::new(vec![
            GaCall::Sync,
            nxtval(),
            GaCall::Get(dens, src),
            GaCall::Compute(vt_armci::SimTime::from_micros(800)),
            GaCall::Acc(fock, dst),
            GaCall::Sync,
        ])
    });
    let report = sim.run().unwrap();
    // nxtval + get + acc per rank.
    assert_eq!(report.metrics.total_ops(), u64::from(n_procs) * 3);
    assert!(report.finish_time >= vt_armci::SimTime::from_micros(800));
}

#[test]
fn ga_runs_are_deterministic() {
    let a = transpose_run(TopologyKind::Cfcg, 48);
    let b = transpose_run(TopologyKind::Cfcg, 48);
    assert_eq!(a.finish_time, b.finish_time);
    assert_eq!(a.net, b.net);
}
