//! Differential proof of the calendar-queue future event list.
//!
//! The simulator's hot path — `EventQueue`, a calendar/ladder queue with
//! an occupancy bitmap and an overflow heap — must be *observably
//! indistinguishable* from `BaselineEventQueue`, the straightforward
//! `BinaryHeap` FEL it replaced (kept precisely to serve as this oracle).
//! The contract is exact (time, insertion-sequence) FIFO order: ties at
//! one instant pop in schedule order.
//!
//! Every case drives both queues through one randomly generated
//! interleaving of schedules, same-instant bursts, and pops, asserting
//! identical observable state after every step. Delays are drawn across
//! all three regimes of the calendar — zero (same-instant bursts), within
//! one bucket width, across the ring, and far past it into the overflow
//! heap — so bucket rotation, bitmap scans, and overflow migration are
//! all crossed with tie-breaking.

use proptest::prelude::*;
use vt_simnet::{BaselineEventQueue, EventQueue, SimTime};

/// Compact encoding of one random interleaving; the op stream is expanded
/// deterministically from `seed` so failures reproduce from the printed
/// spec alone.
#[derive(Clone, Debug)]
struct InterleavingSpec {
    seed: u64,
    steps: u32,
    /// Out of 8: how often a step pops instead of scheduling.
    pop_weight: u8,
    /// Out of 8: how often a schedule step bursts several events at the
    /// exact same instant.
    burst_weight: u8,
}

fn spec_strategy() -> impl Strategy<Value = InterleavingSpec> {
    (any::<u64>(), 1u32..400, 1u8..7, 0u8..7).prop_map(|(seed, steps, pop_weight, burst_weight)| {
        InterleavingSpec {
            seed,
            steps,
            pop_weight,
            burst_weight,
        }
    })
}

/// splitmix64: the expander behind the spec's op stream.
fn mix(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A delay spanning all calendar regimes: zero, sub-bucket (< 128 ns),
/// in-ring (< 4096 × 128 ns), and deep overflow.
fn delay(r: u64) -> SimTime {
    SimTime::from_nanos(match r % 4 {
        0 => 0,
        1 => r % 128,
        2 => r % (4096 * 128),
        _ => r % 50_000_000,
    })
}

/// Drives both queues through the spec's interleaving, asserting equal
/// observable state after every operation, then drains both dry.
fn run_differential(spec: &InterleavingSpec) {
    let mut x = spec.seed;
    let mut fast: EventQueue<u64> = EventQueue::new();
    let mut slow: BaselineEventQueue<u64> = BaselineEventQueue::new();
    let mut payload = 0u64;

    for _ in 0..spec.steps {
        let r = mix(&mut x);
        if (r % 8) < u64::from(spec.pop_weight) {
            assert_eq!(fast.pop(), slow.pop(), "pop diverged: {spec:?}");
        } else {
            let burst = if (r >> 3) % 8 < u64::from(spec.burst_weight) {
                2 + (r >> 6) % 6
            } else {
                1
            };
            let at = fast.now() + delay(mix(&mut x));
            for _ in 0..burst {
                payload += 1;
                fast.schedule(at, payload);
                slow.schedule(at, payload);
            }
        }
        assert_eq!(fast.len(), slow.len(), "len diverged: {spec:?}");
        assert_eq!(fast.is_empty(), slow.is_empty());
        assert_eq!(
            fast.peek_time(),
            slow.peek_time(),
            "peek diverged: {spec:?}"
        );
        assert_eq!(fast.now(), slow.now(), "clock diverged: {spec:?}");
        assert_eq!(fast.processed(), slow.processed());
    }

    // Drain: the full remaining order must match, not just prefixes.
    while !slow.is_empty() {
        assert_eq!(fast.pop(), slow.pop(), "drain diverged: {spec:?}");
    }
    assert!(fast.is_empty());
    assert_eq!(fast.pop(), None);
    assert_eq!(slow.pop(), None);
}

proptest! {
    #[test]
    fn calendar_queue_matches_binary_heap_oracle(spec in spec_strategy()) {
        run_differential(&spec);
    }
}

#[test]
fn same_instant_bursts_pop_in_schedule_order() {
    // The FIFO tie-break contract, pinned directly: many events at one
    // instant come back in exactly the order they were scheduled.
    let mut q: EventQueue<u32> = EventQueue::new();
    let at = SimTime::from_nanos(777);
    for i in 0..100 {
        q.schedule(at, i);
    }
    // A later event scheduled between the burst's pops must not overtake.
    for i in 0..100 {
        let (t, v) = q
            .pop()
            .unwrap_or_else(|| unreachable!("queue holds the burst"));
        assert_eq!((t, v), (at, i));
    }
    assert!(q.is_empty());
}

#[test]
fn overflow_events_migrate_back_into_the_ring() {
    // Events far beyond the calendar ring land in the overflow heap and
    // must still interleave correctly with near-term events as the ring
    // rotates out to them.
    let mut fast: EventQueue<u32> = EventQueue::new();
    let mut slow: BaselineEventQueue<u32> = BaselineEventQueue::new();
    for i in 0..200u32 {
        // Alternate near (in-ring) and far (overflow) horizons.
        let ns = if i % 2 == 0 {
            u64::from(i) * 37
        } else {
            10_000_000 + u64::from(i) * 4093
        };
        fast.schedule(SimTime::from_nanos(ns), i);
        slow.schedule(SimTime::from_nanos(ns), i);
    }
    while !slow.is_empty() {
        assert_eq!(fast.pop(), slow.pop());
    }
    assert!(fast.is_empty());
}
