//! `vtsim` — run virtual-topology experiments from the command line.
//!
//! ```sh
//! vtsim topo --topology cfcg --nodes 97
//! vtsim contention --topology mfcg --op fadd --scenario 20
//! vtsim memory --nodes 1024
//! vtsim dft --cores 12288 --topology mfcg
//! ```

#![warn(clippy::unwrap_used, clippy::expect_used)]

use armci_vt::cli;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (cmd, rest) = match args.split_first() {
        None => {
            print!("{}", cli::usage());
            return;
        }
        Some((c, r)) => (c.clone(), r.to_vec()),
    };
    match cli::run_command(&cmd, &rest) {
        Ok(out) => print!("{out}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    }
}
