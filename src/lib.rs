//! # armci-vt — virtual topologies for a Global Address Space runtime
//!
//! Umbrella crate for the reproduction of *"Virtual Topologies for Scalable
//! Resource Management and Contention Attenuation in a Global Address Space
//! Model on the Cray XT5"* (ICPP 2011). It re-exports the four member
//! crates:
//!
//! * [`core`] (`vt-core`) — the paper's contribution: FCG/MFCG/CFCG/Hypercube
//!   virtual topologies, lowest-dimension-first forwarding, request-path
//!   trees, deadlock analysis and the buffer-memory model.
//! * [`simnet`] (`vt-simnet`) — deterministic discrete-event simulator of a
//!   Cray XT5-class machine (3-D torus, SeaStar-like NICs, BEER-style flow
//!   control).
//! * [`armci`] (`vt-armci`) — the ARMCI-like GAS runtime model: communication
//!   helper threads, request-buffer credits, one-sided operations and
//!   virtual-topology request forwarding.
//! * [`apps`] (`vt-apps`) — workloads: hot-spot contention microbenchmarks,
//!   a NAS LU proxy and NWChem DFT/CCSD proxies, plus a parallel sweep
//!   runner.
//! * [`analyze`] (`vt-analyze`) — static protocol verifier: buffer/credit
//!   dependency-graph acyclicity (with DOT counterexamples), forwarding
//!   totality and depth bounds, `N x B x M` budget accounting, and an
//!   exhaustive small-N model checker; `vtsim analyze` and the experiment
//!   drivers' pre-flight gate.
//! * [`lint`] (`vt-lint`) — workspace determinism & panic-policy static
//!   analyzer: no unordered hash iteration in protocol paths, no ambient
//!   nondeterminism in sim crates, DetRng-only randomness, no float
//!   accumulation in protocol state, justified-panic audit; `vtsim lint`
//!   and a blocking CI gate.
//!
//! See `examples/quickstart.rs` for an end-to-end tour and `DESIGN.md` for
//! the system inventory.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::unwrap_used, clippy::expect_used)]
pub mod cli;

pub use vt_analyze as analyze;
pub use vt_apps as apps;
pub use vt_armci as armci;
pub use vt_core as core;
pub use vt_ga as ga;
pub use vt_lint as lint;
pub use vt_simnet as simnet;

/// Commonly used items, re-exported flat for convenience.
pub mod prelude {
    pub use vt_armci::{RuntimeConfig, Simulation};
    pub use vt_core::{
        Cfcg, Fcg, Hypercube, MemoryModel, Mfcg, RequestTree, Shape, TopologyKind, VirtualTopology,
    };
    pub use vt_ga::{GaCall, GaScript, GlobalArray, Patch};
    pub use vt_simnet::{NetworkConfig, SimTime};
}
