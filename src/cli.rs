//! Argument parsing and command implementations for the `vtsim` binary.
//!
//! Hand-rolled flag parsing (no CLI dependency): every command takes
//! `--flag value` pairs, unknown flags are errors, and each command has
//! defaults matching the paper's setups.

use std::collections::BTreeMap;
use vt_apps::chaos::{ChaosConfig, ChaosOutcome};
use vt_apps::contention::{ContentionConfig, OpSpec, Scenario};
use vt_apps::faults::FaultScenarioConfig;
use vt_apps::gups::GupsConfig;
use vt_apps::lu::LuConfig;
use vt_apps::nwchem_ccsd::CcsdConfig;
use vt_apps::nwchem_dft::DftConfig;
use vt_apps::repair::{RepairOutcome, RepairScenarioConfig};
use vt_apps::serve::{CurvePoint, ServeOutcome, ServeScenarioConfig};
use vt_apps::Table;
use vt_armci::{CoalesceConfig, OpKind};
use vt_core::{analyze, DependencyGraph, MemoryModel, RequestTree, TopologyKind, VirtualTopology};

/// A parsed `--key value` flag map.
#[derive(Debug, Default)]
pub struct Flags {
    map: BTreeMap<String, String>,
}

impl Flags {
    /// Parses `--key value` pairs.
    ///
    /// # Errors
    /// Returns a message for a dangling `--key` or a non-flag token.
    pub fn parse(args: &[String]) -> Result<Flags, String> {
        let mut map = BTreeMap::new();
        let mut it = args.iter();
        while let Some(arg) = it.next() {
            let key = arg
                .strip_prefix("--")
                .ok_or_else(|| format!("expected --flag, got '{arg}'"))?;
            let val = it
                .next()
                .ok_or_else(|| format!("flag --{key} needs a value"))?;
            map.insert(key.to_string(), val.clone());
        }
        Ok(Flags { map })
    }

    /// Takes a value, parsing it into `T`.
    pub fn take<T: std::str::FromStr>(&mut self, key: &str, default: T) -> Result<T, String> {
        match self.map.remove(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("invalid value for --{key}: '{v}'")),
        }
    }

    /// Takes the topology flag.
    pub fn take_topology(&mut self, default: TopologyKind) -> Result<TopologyKind, String> {
        match self.map.remove("topology") {
            None => Ok(default),
            Some(v) => parse_topology(&v),
        }
    }

    /// Errors if any unrecognised flags remain.
    pub fn finish(self) -> Result<(), String> {
        if self.map.is_empty() {
            Ok(())
        } else {
            Err(format!(
                "unknown flags: {}",
                self.map
                    .keys()
                    .map(|k| format!("--{k}"))
                    .collect::<Vec<_>>()
                    .join(", ")
            ))
        }
    }
}

/// Parses a topology name (`fcg`, `mfcg`, `cfcg`, `hypercube`/`hc`, or the
/// generalised `kfcgN`).
pub fn parse_topology(s: &str) -> Result<TopologyKind, String> {
    match s {
        "fcg" => Ok(TopologyKind::Fcg),
        "mfcg" => Ok(TopologyKind::Mfcg),
        "cfcg" => Ok(TopologyKind::Cfcg),
        "hypercube" | "hc" => Ok(TopologyKind::Hypercube),
        other => other
            .strip_prefix("kfcg")
            .and_then(|k| k.parse::<u8>().ok())
            .filter(|&k| k >= 1)
            .map(TopologyKind::KFcg)
            .ok_or_else(|| format!("unknown topology '{other}' (fcg|mfcg|cfcg|hypercube|kfcgN)")),
    }
}

/// Parses a contention scenario: `none`, `11`, `20`, or `1/N`.
pub fn parse_scenario(s: &str) -> Result<Scenario, String> {
    match s {
        "none" | "0" => Ok(Scenario::NoContention),
        "11" => Ok(Scenario::pct11()),
        "20" => Ok(Scenario::pct20()),
        other => other
            .strip_prefix("1/")
            .and_then(|n| n.parse().ok())
            .map(|every_nth| Scenario::Contention { every_nth })
            .ok_or_else(|| format!("unknown scenario '{other}' (none|11|20|1/N)")),
    }
}

/// Parses an operation name into an [`OpSpec`].
pub fn parse_op(s: &str) -> Result<OpSpec, String> {
    match s {
        "putv" => Ok(OpSpec::vector_put()),
        "getv" => Ok(OpSpec::vector_get()),
        "fadd" | "fetch-add" => Ok(OpSpec::fetch_add()),
        "lock" => Ok(OpSpec::lock_unlock()),
        "acc" => Ok(OpSpec {
            kind: OpKind::Acc,
            segments: 1,
            seg_bytes: 8 * 1024,
        }),
        _ => Err(format!("unknown op '{s}' (putv|getv|fadd|lock|acc)")),
    }
}

/// Usage text.
pub fn usage() -> String {
    "vtsim — virtual-topology experiments (ICPP 2011 reproduction)\n\
     \n\
     USAGE: vtsim <command> [--flag value]...\n\
     \n\
     COMMANDS\n\
       analyze     --topology K --nodes N [--ppn 4] [--credits 4]\n\
                   [--buffer-bytes 16384] [--coalesce off]\n\
                   [--fault none|crash|crash:N[,N...]]\n\
                   [--model on|off] [--format human|json] [--dot PATH]\n\
                   static protocol verification (acyclicity, totality, depth,\n\
                   budgets, small-N model check); exits non-zero when the\n\
                   configuration is not certified\n\
       analyze     --matrix on [--format json]   full topology x coalescing x\n\
                   fault verification matrix (the CI gate)\n\
       topo        --topology K --nodes N            inspect a topology\n\
       dot         --topology K --nodes N [--tree R]  Graphviz DOT export\n\
       memory      --nodes N [--ppn 12]              Fig. 5 memory table\n\
       contention  --topology K --op OP --scenario S [--procs 1024] [--ppn 4]\n\
                   [--stride 16] [--iterations 20] [--coalesce off]\n\
                   Figs. 6/7 protocol (coalesce on|off folds shared-hop\n\
                   forwards into envelopes)\n\
       lu          --procs N [--topology K] [--iterations 250]   Fig. 8\n\
       dft         --cores N [--topology K] [--tasks N]          Fig. 9a\n\
       ccsd        --cores N [--topology K]                      Fig. 9b\n\
       gups        --procs N [--topology K] [--skew 0.0]         UPC-style\n\
       faults      --topology K [--procs 256] [--ppn 4] [--ops 8]\n\
                   [--kill-at-us 300] [--membership on|off]\n\
                   forwarder-kill resilience experiment (membership adds\n\
                   failure detection + live epoch re-packing)\n\
       repair      [--topology K --nodes N --victim V] [--ppn 2] [--ops 4]\n\
                   [--kill-at-us 50] [--format human|json]\n\
                   membership-repair experiment: crash an escape-critical\n\
                   boundary node the static analyzer refuses (defaults run\n\
                   both pins: mfcg/23 node 2 and cfcg/29 node 24) and\n\
                   complete the workload via epoch re-packing; exits\n\
                   non-zero unless every run completes with zero credit\n\
                   leaks and a certified post-repair topology\n\
       serve       [--preset flash-crowd|steady|load-repack] [--topology K]\n\
                   [--nodes N] [--ppn P] [--rate R] [--peak X]\n\
                   [--horizon-us H] [--queue-cap Q] [--retry-budget B]\n\
                   [--retry-timeout-us 5000]\n\
                   [--guard 0.5] [--tick-us 250] [--load-repack on|off]\n\
                   [--curve 0.5,1,2,4] [--format human|json]\n\
                   open-system overload experiment: deterministic arrival\n\
                   processes drive every rank as a serving client past the\n\
                   hot CHT's saturation point; reports shed/goodput/latency\n\
                   percentiles (and the goodput-vs-offered-load curve with\n\
                   --curve); exits non-zero unless the exactly-once ledger\n\
                   balances with zero credit leaks\n\
       chaos       [--cells 64] [--ppn 4] [--ops 12] [--seed 50336]\n\
                   [--threads 0] [--quick] [--format human|json]\n\
                   deterministic chaos campaign: randomised composite fault\n\
                   schedules (crashes, reboots, partitions, loss, payload\n\
                   corruption) over the topology x population grid, every\n\
                   cell checked against invariant oracles (completion, zero\n\
                   credit leaks, every corruption caught, exactly-once\n\
                   effects) plus double-run replay identity; failing\n\
                   schedules are greedily shrunk to a minimized reproducer;\n\
                   exits non-zero when any cell violates an invariant\n\
       lint        [--root .] [--allow lint_allow.toml] [--format human|json]\n\
                   [--out PATH]\n\
                   workspace determinism & panic-policy static analyzer:\n\
                   D1 no unordered hash iteration in protocol paths, D2 no\n\
                   ambient nondeterminism in sim crates, D3 DetRng is the\n\
                   only randomness source, D4 no float accumulation in\n\
                   protocol state, P1 justified-panic audit; exits non-zero\n\
                   on any unallowlisted finding or stale allowlist entry\n\
       bench       [--quick] [--repeats N] [--sizes 1024,4096,16384]\n\
                   [--topologies fcg,mfcg,cfcg,hypercube] [--serve on|off]\n\
                   [--out PATH]\n\
                   [--baseline BENCH_sim.json] [--max-regression-pct 50]\n\
                   simulator-core throughput on the frozen hot-spot\n\
                   workload; emits the BENCH_sim.json trajectory document\n\
                   and, with --baseline, exits non-zero on a regression\n\
     \n\
     Topologies: fcg mfcg cfcg hypercube kfcgN. Scenarios: none 11 20 1/N.\n"
        .to_string()
}

/// Runs one command; returns the rendered output.
///
/// # Errors
/// Returns a usage/flag error message.
pub fn run_command(cmd: &str, args: &[String]) -> Result<String, String> {
    // `bench` and `chaos` follow the figure-harness convention of a bare
    // `--quick`; normalize it to the `--flag value` shape the parser
    // expects.
    let normalized;
    let args = if cmd == "bench" || cmd == "chaos" {
        normalized = normalize_bare_flags(args, &["--quick"]);
        &normalized[..]
    } else {
        args
    };
    let mut flags = Flags::parse(args)?;
    let out = match cmd {
        "analyze" => {
            let matrix = match flags.take("matrix", "off".to_string())?.as_str() {
                "on" => true,
                "off" => false,
                other => return Err(format!("invalid value for --matrix: '{other}' (on|off)")),
            };
            let format = flags.take("format", "human".to_string())?;
            if format != "human" && format != "json" {
                return Err(format!(
                    "invalid value for --format: '{format}' (human|json)"
                ));
            }
            if matrix {
                let threads: usize = flags.take("threads", 0)?;
                flags.finish()?;
                return analyze_matrix(&format, threads);
            }
            let topology = flags.take_topology(TopologyKind::Mfcg)?;
            let nodes: u32 = flags.take("nodes", 64)?;
            let ppn: u32 = flags.take("ppn", 4)?;
            let credits: u32 = flags.take("credits", 4)?;
            let buffer_bytes: u64 = flags.take("buffer-bytes", 16 * 1024)?;
            let coalesce = match flags.take("coalesce", "off".to_string())?.as_str() {
                "on" => true,
                "off" => false,
                other => return Err(format!("invalid value for --coalesce: '{other}' (on|off)")),
            };
            let fault = flags.take("fault", "none".to_string())?;
            let model = match flags.take("model", "on".to_string())?.as_str() {
                "on" => true,
                "off" => false,
                other => return Err(format!("invalid value for --model: '{other}' (on|off)")),
            };
            let dot_path = flags.take("dot", String::new())?;
            flags.finish()?;
            let mut cfg = vt_analyze::AnalyzeConfig::new(topology, nodes);
            cfg.procs_per_node = ppn;
            cfg.credits = credits;
            cfg.buffer_bytes = buffer_bytes;
            cfg.coalescing = coalesce;
            cfg.model_check = model;
            cfg.dead_sequence = match fault.as_str() {
                "none" => Vec::new(),
                "crash" => crash_victim(topology, nodes).into_iter().collect(),
                other => match other.strip_prefix("crash:") {
                    Some(list) => list
                        .split(',')
                        .map(|v| {
                            v.parse::<u32>()
                                .map_err(|_| format!("invalid crash victim '{v}'"))
                        })
                        .collect::<Result<Vec<u32>, String>>()?,
                    None => {
                        return Err(format!(
                            "invalid value for --fault: '{other}' (none|crash|crash:N[,N...])"
                        ))
                    }
                },
            };
            let report = vt_analyze::analyze(&cfg)?;
            if !dot_path.is_empty() {
                if let Some(w) = &report.counterexample {
                    std::fs::write(&dot_path, w.dot())
                        .map_err(|e| format!("cannot write {dot_path}: {e}"))?;
                }
            }
            let rendered = if format == "json" {
                let mut j = report.to_json();
                j.push('\n');
                j
            } else {
                report.render()
            };
            if report.certified() {
                rendered
            } else {
                return Err(format!("configuration NOT certified\n{rendered}"));
            }
        }
        "lint" => {
            let root = flags.take("root", ".".to_string())?;
            let allow = flags.take("allow", String::new())?;
            let format = flags.take("format", "human".to_string())?;
            if format != "human" && format != "json" {
                return Err(format!(
                    "invalid value for --format: '{format}' (human|json)"
                ));
            }
            let out_path = flags.take("out", String::new())?;
            flags.finish()?;
            let allow_path = (!allow.is_empty()).then(|| std::path::PathBuf::from(&allow));
            let report =
                vt_lint::lint_workspace(std::path::Path::new(&root), allow_path.as_deref())
                    .map_err(|e| format!("lint failed: {e}"))?;
            if !out_path.is_empty() {
                let mut doc = report.to_json();
                doc.push('\n');
                std::fs::write(&out_path, doc)
                    .map_err(|e| format!("cannot write {out_path}: {e}"))?;
            }
            let rendered = if format == "json" {
                let mut j = report.to_json();
                j.push('\n');
                j
            } else {
                report.render()
            };
            if report.clean() {
                rendered
            } else {
                return Err(format!("determinism gate FAILED\n{rendered}"));
            }
        }
        "topo" => {
            let kind = flags.take_topology(TopologyKind::Mfcg)?;
            let nodes: u32 = flags.take("nodes", 64)?;
            flags.finish()?;
            if !kind.supports(nodes) {
                return Err(format!("{} does not support {nodes} nodes", kind.name()));
            }
            let topo = kind.build(nodes);
            let stats = analyze(&topo);
            let tree = RequestTree::build(&topo, 0);
            let dep = DependencyGraph::from_topology(&topo);
            format!(
                "{} over {} nodes (shape {:?})\n\
                 edges: {}   max degree: {}\n\
                 routes: avg {:.2} hops, max {} hops\n\
                 request tree at node 0: height {}, direct fan-in {}\n\
                 buffer-dependency graph: {} channels, {} arcs, deadlock-free: {}\n",
                kind.name(),
                nodes,
                vt_core::VirtualTopology::shape(&topo).dims(),
                stats.edges,
                stats.max_degree,
                stats.avg_route_hops,
                stats.max_route_hops,
                tree.height(),
                tree.root_fan_in(),
                dep.channel_count(),
                dep.graph().edge_count(),
                dep.is_deadlock_free(),
            )
        }
        "dot" => {
            let kind = flags.take_topology(TopologyKind::Mfcg)?;
            let nodes: u32 = flags.take("nodes", 9)?;
            let tree_root: i64 = flags.take("tree", -1i64)?;
            flags.finish()?;
            if !kind.supports(nodes) {
                return Err(format!("{} does not support {nodes} nodes", kind.name()));
            }
            let topo = kind.build(nodes);
            if tree_root >= 0 {
                vt_core::tree_dot(&topo, tree_root as u32)
            } else {
                vt_core::topology_dot(&topo)
            }
        }
        "memory" => {
            let nodes: u32 = flags.take("nodes", 1024)?;
            let ppn: u32 = flags.take("ppn", 12)?;
            flags.finish()?;
            let model = MemoryModel {
                procs_per_node: ppn,
                ..MemoryModel::default()
            };
            let mut table = Table::new(&["topology", "pool (MB)", "master VmRSS (MB)"]);
            for kind in TopologyKind::ALL {
                if !kind.supports(nodes) {
                    continue;
                }
                let topo = kind.build(nodes);
                table.row(&[
                    kind.name().to_string(),
                    format!("{:.1}", model.cht_pool_bytes(&topo, 0) as f64 / 1048576.0),
                    format!(
                        "{:.1}",
                        model.master_vmrss_bytes(&topo, 0) as f64 / 1048576.0
                    ),
                ]);
            }
            format!(
                "{} processes ({} nodes x {} ppn)\n{}",
                nodes * ppn,
                nodes,
                ppn,
                table.render()
            )
        }
        "contention" => {
            let topology = flags.take_topology(TopologyKind::Fcg)?;
            let op = parse_op(&flags.take("op", "fadd".to_string())?)?;
            let scenario = parse_scenario(&flags.take("scenario", "none".to_string())?)?;
            let n_procs: u32 = flags.take("procs", 1024)?;
            let ppn: u32 = flags.take("ppn", 4)?;
            let measure_stride: u32 = flags.take("stride", 16)?;
            let iterations: u32 = flags.take("iterations", 20)?;
            let coalesce = match flags.take("coalesce", "off".to_string())?.as_str() {
                "on" => Some(CoalesceConfig::on()),
                "off" => None,
                other => return Err(format!("invalid value for --coalesce: '{other}' (on|off)")),
            };
            flags.finish()?;
            let cfg = ContentionConfig {
                n_procs,
                ppn,
                measure_stride,
                iterations,
                coalesce,
                ..ContentionConfig::paper(topology, op, scenario)
            };
            let o = vt_apps::contention::run(&cfg);
            let mut out = format!(
                "{} / {} / {}: mean {:.1} us, median {:.1} us over {} ranks\n\
                 stream misses {}, forwards {}, total {:.3} s\n",
                topology.name(),
                op.kind.name(),
                scenario.label(),
                o.mean_us(),
                o.median_us(),
                o.points.len(),
                o.stream_misses,
                o.forwards,
                o.finish.as_secs_f64(),
            );
            if coalesce.is_some() {
                out.push_str(&format!(
                    "coalescing: {} envelopes folded {} requests ({} physical forwards, {} net messages)\n",
                    o.envelopes, o.coalesced, o.fwd_messages, o.messages,
                ));
            }
            out
        }
        "lu" => {
            let topology = flags.take_topology(TopologyKind::Fcg)?;
            let n_procs: u32 = flags.take("procs", 192)?;
            let iterations: u32 = flags.take("iterations", 250)?;
            flags.finish()?;
            let cfg = LuConfig {
                iterations,
                ..LuConfig::class_c(n_procs, topology)
            };
            let o = vt_apps::lu::run(&cfg);
            format!(
                "LU {} procs / {}: {:.1} s (forwarded faces {:.1}%)\n",
                n_procs,
                topology.name(),
                o.exec_seconds,
                o.forward_fraction * 100.0
            )
        }
        "dft" => {
            let topology = flags.take_topology(TopologyKind::Fcg)?;
            let cores: u32 = flags.take("cores", 3072)?;
            let default_tasks = DftConfig::siosi3(cores, topology).total_tasks;
            let tasks: u32 = flags.take("tasks", default_tasks / 8)?;
            flags.finish()?;
            let cfg = DftConfig {
                total_tasks: tasks,
                ..DftConfig::siosi3(cores, topology)
            };
            let o = vt_apps::nwchem_dft::run(&cfg);
            format!(
                "DFT {} cores / {}: {:.1} s ({} tasks, {} stream misses)\n",
                cores,
                topology.name(),
                o.exec_seconds,
                o.tasks_executed,
                o.stream_misses
            )
        }
        "ccsd" => {
            let topology = flags.take_topology(TopologyKind::Fcg)?;
            let cores: u32 = flags.take("cores", 9996)?;
            flags.finish()?;
            let mut cfg = CcsdConfig::water(cores, topology);
            cfg.serial_seconds /= 8.0;
            cfg.fixed_seconds_per_proc /= 8.0;
            let o = vt_apps::nwchem_ccsd::run(&cfg);
            format!(
                "CCSD {} cores / {}: {:.1} s (paging {:.2}, node mem {:.2} GiB)\n",
                cores,
                topology.name(),
                o.exec_seconds,
                o.paging_factor,
                o.node_mem_used as f64 / (1u64 << 30) as f64
            )
        }
        "gups" => {
            let topology = flags.take_topology(TopologyKind::Fcg)?;
            let n_procs: u32 = flags.take("procs", 256)?;
            let skew: f64 = flags.take("skew", 0.0)?;
            flags.finish()?;
            let o = vt_apps::gups::run(&GupsConfig::skewed(n_procs, topology, skew));
            format!(
                "GUPS {} procs / {} / skew {:.0}%: {:.1} us per update, {:.4} MUPS\n",
                n_procs,
                topology.name(),
                skew * 100.0,
                o.mean_update_us,
                o.gups * 1e3
            )
        }
        "faults" => {
            let topology = flags.take_topology(TopologyKind::Mfcg)?;
            let n_procs: u32 = flags.take("procs", 256)?;
            let ppn: u32 = flags.take("ppn", 4)?;
            let ops_per_rank: u32 = flags.take("ops", 8)?;
            let kill_at_us: u64 = flags.take("kill-at-us", 300)?;
            let membership = match flags.take("membership", "off".to_string())?.as_str() {
                "on" => true,
                "off" => false,
                other => {
                    return Err(format!(
                        "invalid value for --membership: '{other}' (on|off)"
                    ))
                }
            };
            flags.finish()?;
            let cfg = FaultScenarioConfig {
                n_procs,
                ppn,
                ops_per_rank,
                kill_at: vt_armci::SimTime::from_micros(kill_at_us),
                membership,
                ..FaultScenarioConfig::paper(topology)
            };
            if !topology.supports(cfg.num_nodes()) {
                return Err(format!(
                    "{} does not support {} nodes",
                    topology.name(),
                    cfg.num_nodes()
                ));
            }
            let o = vt_apps::faults::run(&cfg);
            let mut out = format!(
                "forwarder kill on {} ({} procs, node{} dead at {} us):\n\
                 healthy {:.1} us -> faulted {:.1} us ({:.2}x), availability {:.3}\n\
                 {} lost ranks, {} failed ops, {} completed ops\n\
                 recovery: {} retries, {} reroutes, {} credit reclaims, {} dedup hits, \
                 {} corrupt caught, {} partitions healed\n",
                topology.name(),
                n_procs,
                o.victim,
                kill_at_us,
                o.healthy_seconds * 1e6,
                o.exec_seconds * 1e6,
                o.slowdown(),
                o.availability,
                o.lost_ranks,
                o.failed_ops,
                o.completed_ops,
                o.retries,
                o.reroutes,
                o.reclaims,
                o.dedup_hits,
                o.corrupt_detected,
                o.partitions_healed,
            );
            if membership {
                out.push_str(&render_repair_stats(&o.repair));
            }
            out
        }
        "repair" => {
            let format = flags.take("format", "human".to_string())?;
            if format != "human" && format != "json" {
                return Err(format!(
                    "invalid value for --format: '{format}' (human|json)"
                ));
            }
            let custom = flags.map.contains_key("topology")
                || flags.map.contains_key("nodes")
                || flags.map.contains_key("victim");
            let scenarios: Vec<RepairScenarioConfig> = if custom {
                let topology = flags.take_topology(TopologyKind::Mfcg)?;
                let base = match topology {
                    TopologyKind::Cfcg => RepairScenarioConfig::cfcg_boundary(),
                    _ => RepairScenarioConfig::mfcg_boundary(),
                };
                let nodes: u32 = flags.take("nodes", base.nodes)?;
                let victim: u32 = flags.take("victim", base.victim)?;
                let ppn: u32 = flags.take("ppn", base.ppn)?;
                let ops: u32 = flags.take("ops", base.ops_per_rank)?;
                let kill_at_us: u64 = flags.take("kill-at-us", 50)?;
                if !topology.supports(nodes) {
                    return Err(format!(
                        "{} does not support {nodes} nodes",
                        topology.name()
                    ));
                }
                if victim >= nodes {
                    return Err(format!("victim {victim} outside 0..{nodes}"));
                }
                vec![RepairScenarioConfig {
                    topology,
                    nodes,
                    ppn,
                    ops_per_rank: ops,
                    victim,
                    kill_at: vt_armci::SimTime::from_micros(kill_at_us),
                    ..base
                }]
            } else {
                let ppn: u32 = flags.take("ppn", 2)?;
                let ops: u32 = flags.take("ops", 4)?;
                let kill_at_us: u64 = flags.take("kill-at-us", 50)?;
                [
                    RepairScenarioConfig::mfcg_boundary(),
                    RepairScenarioConfig::cfcg_boundary(),
                ]
                .into_iter()
                .map(|base| RepairScenarioConfig {
                    ppn,
                    ops_per_rank: ops,
                    kill_at: vt_armci::SimTime::from_micros(kill_at_us),
                    ..base
                })
                .collect()
            };
            flags.finish()?;
            let mut out = String::new();
            let mut cells = Vec::new();
            let mut all_ok = true;
            for cfg in &scenarios {
                let o = vt_apps::repair::run(cfg);
                let ok = o.completed && o.credit_leaks == 0 && o.post_repair_certified;
                all_ok &= ok;
                if format == "json" {
                    cells.push(repair_json(cfg, &o));
                } else {
                    out.push_str(&render_repair_outcome(cfg, &o));
                }
            }
            if format == "json" {
                out = format!(
                    "{{\"all_repaired\":{all_ok},\"scenarios\":[{}]}}\n",
                    cells.join(",")
                );
            }
            if !all_ok {
                return Err(format!("repair experiment FAILED\n{out}"));
            }
            out
        }
        "serve" => {
            let format = flags.take("format", "human".to_string())?;
            if format != "human" && format != "json" {
                return Err(format!(
                    "invalid value for --format: '{format}' (human|json)"
                ));
            }
            let preset = flags.take("preset", "flash-crowd".to_string())?;
            let base = match preset.as_str() {
                "flash-crowd" | "flash" => ServeScenarioConfig::flash_crowd(),
                "steady" => ServeScenarioConfig::steady_small(),
                "load-repack" | "repack" => ServeScenarioConfig::load_repack_hotspot(),
                other => {
                    return Err(format!(
                        "unknown preset '{other}' (flash-crowd|steady|load-repack)"
                    ))
                }
            };
            let mut cfg = base;
            cfg.topology = flags.take_topology(base.topology)?;
            cfg.nodes = flags.take("nodes", base.nodes)?;
            cfg.ppn = flags.take("ppn", base.ppn)?;
            cfg.arrivals.rate_per_sec = flags.take("rate", base.arrivals.rate_per_sec)?;
            cfg.arrivals.peak = flags.take("peak", base.arrivals.peak)?;
            let horizon_us: u64 = flags.take("horizon-us", base.horizon.as_nanos() / 1000)?;
            cfg.horizon = vt_armci::SimTime::from_micros(horizon_us);
            cfg.queue_cap = flags.take("queue-cap", base.queue_cap)?;
            cfg.retry_budget = flags.take("retry-budget", base.retry_budget)?;
            let retry_timeout_us: u64 =
                flags.take("retry-timeout-us", base.retry_timeout.as_nanos() / 1000)?;
            cfg.retry_timeout = vt_armci::SimTime::from_micros(retry_timeout_us);
            cfg.guard_threshold = flags.take("guard", base.guard_threshold)?;
            let tick_us: u64 = flags.take("tick-us", base.tick.as_nanos() / 1000)?;
            cfg.tick = vt_armci::SimTime::from_micros(tick_us);
            cfg.load_repack = match flags
                .take(
                    "load-repack",
                    if base.load_repack { "on" } else { "off" }.to_string(),
                )?
                .as_str()
            {
                "on" => true,
                "off" => false,
                other => {
                    return Err(format!(
                        "invalid value for --load-repack: '{other}' (on|off)"
                    ))
                }
            };
            let curve_spec = flags.take("curve", String::new())?;
            flags.finish()?;
            if !cfg.topology.supports(cfg.nodes) {
                return Err(format!(
                    "{} does not support {} nodes",
                    cfg.topology.name(),
                    cfg.nodes
                ));
            }
            let factors = curve_spec
                .split(',')
                .filter(|v| !v.is_empty())
                .map(|v| {
                    v.parse::<f64>()
                        .map_err(|_| format!("invalid factor '{v}' in --curve"))
                })
                .collect::<Result<Vec<f64>, String>>()?;
            let o = vt_apps::serve::run(&cfg);
            let ok = o.exactly_once && o.credit_leaks == 0;
            let points = if factors.is_empty() {
                Vec::new()
            } else {
                vt_apps::serve::curve(&cfg, &factors)
            };
            let mut out = if format == "json" {
                serve_json(&cfg, &o, &points)
            } else {
                let mut s = vt_apps::serve::render(&cfg, &o);
                if !points.is_empty() {
                    s.push_str(&render_serve_curve(&points));
                }
                s
            };
            if !ok {
                out = format!("serve experiment FAILED (ledger or credit invariant)\n{out}");
                return Err(out);
            }
            out
        }
        "chaos" => {
            let format = flags.take("format", "human".to_string())?;
            if format != "human" && format != "json" {
                return Err(format!(
                    "invalid value for --format: '{format}' (human|json)"
                ));
            }
            let quick = match flags.take("quick", "off".to_string())?.as_str() {
                "on" => true,
                "off" => false,
                other => return Err(format!("invalid value for --quick: '{other}' (on|off)")),
            };
            let base = if quick {
                ChaosConfig::quick()
            } else {
                ChaosConfig::paper()
            };
            let cfg = ChaosConfig {
                cells: flags.take("cells", base.cells)?,
                ppn: flags.take("ppn", base.ppn)?,
                ops_per_rank: flags.take("ops", base.ops_per_rank)?,
                seed: flags.take("seed", base.seed)?,
                threads: flags.take("threads", base.threads)?,
            };
            flags.finish()?;
            let o = vt_apps::chaos::try_run(&cfg).map_err(|e| e.to_string())?;
            let out = if format == "json" {
                chaos_json(&cfg, &o)
            } else {
                render_chaos(&cfg, &o)
            };
            if o.failing_cells() > 0 {
                return Err(format!(
                    "chaos campaign FAILED ({} of {} cells violated invariants)\n{out}",
                    o.failing_cells(),
                    o.cells.len()
                ));
            }
            out
        }
        "bench" => {
            let quick = match flags.take("quick", "off".to_string())?.as_str() {
                "on" => true,
                "off" => false,
                other => return Err(format!("invalid value for --quick: '{other}' (on|off)")),
            };
            let mut opts = if quick {
                vt_bench::throughput::BenchOpts::quick()
            } else {
                vt_bench::throughput::BenchOpts::full()
            };
            opts.repeats = flags.take("repeats", opts.repeats)?;
            opts.serve = match flags
                .take("serve", if opts.serve { "on" } else { "off" }.to_string())?
                .as_str()
            {
                "on" => true,
                "off" => false,
                other => return Err(format!("invalid value for --serve: '{other}' (on|off)")),
            };
            let sizes = flags.take("sizes", String::new())?;
            if !sizes.is_empty() {
                opts.sizes = sizes
                    .split(',')
                    .map(|v| {
                        v.parse::<u32>()
                            .map_err(|_| format!("invalid size '{v}' in --sizes"))
                    })
                    .collect::<Result<Vec<u32>, String>>()?;
            }
            let topologies = flags.take("topologies", String::new())?;
            if !topologies.is_empty() {
                opts.topologies = topologies
                    .split(',')
                    .map(parse_topology)
                    .collect::<Result<Vec<TopologyKind>, String>>()?;
            }
            let out_path = flags.take("out", String::new())?;
            let baseline = flags.take("baseline", String::new())?;
            let max_regression_pct: f64 = flags.take(
                "max-regression-pct",
                vt_bench::throughput::DEFAULT_MAX_REGRESSION_PCT,
            )?;
            flags.finish()?;
            let report = vt_bench::throughput::run(&opts).map_err(|e| e.to_string())?;
            let mut out = report.render();
            if !baseline.is_empty() {
                let doc = std::fs::read_to_string(&baseline)
                    .map_err(|e| format!("cannot read {baseline}: {e}"))?;
                let table =
                    vt_bench::throughput::check_regression(&report, &doc, max_regression_pct)
                        .map_err(|e| e.to_string())?;
                out.push_str("\nvs committed baseline (gate passed):\n");
                out.push_str(&table);
            }
            if out_path.is_empty() {
                out.push('\n');
                out.push_str(&report.to_json());
            } else {
                std::fs::write(&out_path, report.to_json())
                    .map_err(|e| format!("cannot write {out_path}: {e}"))?;
                out.push_str(&format!("\n[wrote {out_path}]\n"));
            }
            out
        }
        "help" | "--help" | "-h" => usage(),
        other => return Err(format!("unknown command '{other}'\n\n{}", usage())),
    };
    Ok(out)
}

/// Expands bare boolean flags (e.g. a trailing `--quick` or one followed
/// by another flag) into `--flag on` pairs so [`Flags::parse`] accepts
/// them.
fn normalize_bare_flags(args: &[String], bare: &[&str]) -> Vec<String> {
    let mut out = Vec::with_capacity(args.len() + 1);
    for (i, a) in args.iter().enumerate() {
        out.push(a.clone());
        if bare.contains(&a.as_str()) {
            let followed_by_flag = match args.get(i + 1) {
                Some(next) => next.starts_with("--"),
                None => true,
            };
            if followed_by_flag {
                out.push("on".to_string());
            }
        }
    }
    out
}

/// Crash victim used by `vtsim analyze --fault crash`: the first forwarder
/// on the diameter route node 0 -> node `n-1`, an *interior* node with
/// full route-around diversity. (Crashing a partial-slice boundary node
/// can genuinely partition live pairs — the analyzer refuses those
/// configurations, see `vt-analyze`'s boundary-crash test.) When every
/// route is direct (FCG), a non-endpoint node is crashed instead so
/// dead-endpoint handling is still exercised.
fn crash_victim(kind: TopologyKind, nodes: u32) -> Option<u32> {
    if nodes < 3 {
        return None;
    }
    let topo = kind.try_build(nodes).ok()?;
    match topo.next_hop(0, nodes - 1) {
        Some(h) if h != 0 && h != nodes - 1 => Some(h),
        _ => Some(1),
    }
}

/// One human-readable line of membership/repair activity counters.
fn render_repair_stats(r: &vt_armci::RepairStats) -> String {
    format!(
        "membership repair: {} suspicions ({} false, {} suppressed), {} epoch bumps \
         ({} rejoins), {} drained, {} replayed, {} probes, fallback depth {}, final epoch {}\n",
        r.suspicions,
        r.false_suspicions,
        r.false_suspicions_suppressed,
        r.epoch_bumps,
        r.rejoins_committed,
        r.drained_requests,
        r.replayed_requests,
        r.probes,
        r.fallback_depth,
        r.final_epoch,
    )
}

/// Matching field order for the repair JSON objects.
fn repair_stats_json(r: &vt_armci::RepairStats) -> String {
    format!(
        "{{\"suspicions\":{},\"false_suspicions\":{},\
         \"false_suspicions_suppressed\":{},\
         \"epoch_bumps\":{},\"rejoins_committed\":{},\
         \"drained_requests\":{},\"replayed_requests\":{},\
         \"probes\":{},\"fallback_depth\":{},\"final_epoch\":{}}}",
        r.suspicions,
        r.false_suspicions,
        r.false_suspicions_suppressed,
        r.epoch_bumps,
        r.rejoins_committed,
        r.drained_requests,
        r.replayed_requests,
        r.probes,
        r.fallback_depth,
        r.final_epoch,
    )
}

/// Human rendering of one membership-repair scenario outcome.
fn render_repair_outcome(cfg: &RepairScenarioConfig, o: &RepairOutcome) -> String {
    let mut s = format!(
        "repair {} n={} victim node{} ({} procs):\n\
         static analyzer: {}\n\
         membership run: {} in {:.1} us, availability {:.3}, \
         {} completed ops, {} failed, {} credit leaks, {} retries\n",
        cfg.topology.name(),
        cfg.nodes,
        o.victim,
        cfg.n_procs(),
        if o.static_refusal {
            "REFUSES crashed packing (pin holds)"
        } else {
            "accepts crashed packing"
        },
        if o.completed { "COMPLETED" } else { "FAILED" },
        o.exec_seconds * 1e6,
        o.availability,
        o.completed_ops,
        o.failed_ops,
        o.credit_leaks,
        o.retries,
    );
    s.push_str(&render_repair_stats(&o.repair));
    s.push_str(&format!(
        "post-repair topology: {} over {} survivors, {}\n\n",
        o.post_repair_kind.name(),
        cfg.nodes - 1,
        if o.post_repair_certified {
            "CERTIFIED"
        } else {
            "NOT CERTIFIED"
        },
    ));
    s
}

/// Hand-rolled JSON cell for one membership-repair scenario outcome.
fn repair_json(cfg: &RepairScenarioConfig, o: &RepairOutcome) -> String {
    format!(
        "{{\"topology\":\"{}\",\"nodes\":{},\"victim\":{},\"static_refusal\":{},\
         \"completed\":{},\"exec_seconds\":{:.9},\"availability\":{:.6},\
         \"completed_ops\":{},\"failed_ops\":{},\"credit_leaks\":{},\
         \"lost_ranks\":{},\"retries\":{},\
         \"post_repair_kind\":\"{}\",\"post_repair_certified\":{},\
         \"repair\":{}}}",
        cfg.topology.name(),
        cfg.nodes,
        o.victim,
        o.static_refusal,
        o.completed,
        o.exec_seconds,
        o.availability,
        o.completed_ops,
        o.failed_ops,
        o.credit_leaks,
        o.lost_ranks,
        o.retries,
        o.post_repair_kind.name(),
        o.post_repair_certified,
        repair_stats_json(&o.repair),
    )
}

/// 64-bit FNV-1a — a stable short fingerprint for the per-cell replay
/// digests, so the rendered campaign stays compact and byte-diffable.
fn fnv64(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Human rendering of a chaos campaign: one row per cell plus the
/// campaign verdict (and the minimized reproducer when a cell failed).
fn render_chaos(cfg: &ChaosConfig, o: &ChaosOutcome) -> String {
    let mut out = format!(
        "# Chaos campaign: {} cells, seed {:#x}, {} ops/rank at {} ppn\n",
        cfg.cells, cfg.seed, cfg.ops_per_rank, cfg.ppn
    );
    let mut table = Table::new(&[
        "cell",
        "topology",
        "procs",
        "schedule",
        "exec (us)",
        "retries",
        "corrupt",
        "epochs",
        "rejoins",
        "heals",
        "digest",
        "verdict",
    ]);
    for c in &o.cells {
        table.row(&[
            c.idx.to_string(),
            c.topology.name().to_string(),
            c.n_procs.to_string(),
            format!(
                "{}c {}r {}p {}d {}x",
                c.crashes, c.restarts, c.partitions, c.drop_windows, c.corrupt_windows
            ),
            format!("{:.1}", c.exec_seconds * 1e6),
            c.retries.to_string(),
            c.corrupt_detected.to_string(),
            c.epoch_bumps.to_string(),
            c.rejoins_committed.to_string(),
            c.partitions_healed.to_string(),
            format!("{:016x}", fnv64(&c.digest)),
            if c.passed() {
                "ok".to_string()
            } else {
                "VIOLATED".to_string()
            },
        ]);
    }
    out.push_str(&table.render());
    let tot = |f: fn(&vt_apps::CellOutcome) -> u64| o.cells.iter().map(f).sum::<u64>();
    out.push_str(&format!(
        "totals: {} retries, {} corrupt caught, {} epoch bumps, {} rejoins, \
         {} partitions healed, {} suppressed suspicions\n",
        tot(|c| c.retries),
        tot(|c| c.corrupt_detected),
        tot(|c| c.epoch_bumps),
        tot(|c| c.rejoins_committed),
        tot(|c| c.partitions_healed),
        tot(|c| c.false_suspicions_suppressed),
    ));
    let failing = o.failing_cells();
    if failing == 0 {
        out.push_str(&format!(
            "campaign: {} cells, all invariants HELD, replay byte-identical\n",
            o.cells.len()
        ));
    } else {
        out.push_str(&format!(
            "campaign: {failing} of {} cells VIOLATED invariants\n",
            o.cells.len()
        ));
        for c in o.cells.iter().filter(|c| !c.passed()) {
            for v in &c.violations {
                out.push_str(&format!("  cell {}: {v}\n", c.idx));
            }
        }
    }
    if let Some(m) = &o.minimized {
        out.push_str(&format!(
            "minimized reproducer (cell {}): {:?}\n",
            m.cell, m.plan
        ));
        for v in &m.violations {
            out.push_str(&format!("  still fails: {v}\n"));
        }
    }
    out
}

/// Hand-rolled JSON document for one chaos campaign.
fn chaos_json(cfg: &ChaosConfig, o: &ChaosOutcome) -> String {
    let cells = o
        .cells
        .iter()
        .map(|c| {
            let violations = c
                .violations
                .iter()
                .map(|v| format!("\"{}\"", v.replace('"', "'")))
                .collect::<Vec<_>>()
                .join(",");
            format!(
                "{{\"idx\":{},\"topology\":\"{}\",\"n_procs\":{},\
                 \"crashes\":{},\"restarts\":{},\"partitions\":{},\
                 \"drop_windows\":{},\"corrupt_windows\":{},\
                 \"exec_seconds\":{:.9},\"retries\":{},\"corrupt_detected\":{},\
                 \"epoch_bumps\":{},\"rejoins_committed\":{},\
                 \"partitions_healed\":{},\"false_suspicions_suppressed\":{},\
                 \"digest\":\"{:016x}\",\"passed\":{},\"violations\":[{violations}]}}",
                c.idx,
                c.topology.name(),
                c.n_procs,
                c.crashes,
                c.restarts,
                c.partitions,
                c.drop_windows,
                c.corrupt_windows,
                c.exec_seconds,
                c.retries,
                c.corrupt_detected,
                c.epoch_bumps,
                c.rejoins_committed,
                c.partitions_healed,
                c.false_suspicions_suppressed,
                fnv64(&c.digest),
                c.passed(),
            )
        })
        .collect::<Vec<_>>()
        .join(",");
    format!(
        "{{\"cells\":{},\"seed\":{},\"all_passed\":{},\"cell_results\":[{cells}]}}\n",
        cfg.cells,
        cfg.seed,
        o.failing_cells() == 0,
    )
}

/// Human rendering of the goodput-vs-offered-load curve.
fn render_serve_curve(points: &[CurvePoint]) -> String {
    let mut s = String::from("goodput vs offered load:\n");
    for p in points {
        s.push_str(&format!(
            "  x{:<5} offered {:>9.0}/s  goodput {:>9.0}/s  shed {:5.1}%  p99 {:.1} us\n",
            p.factor,
            p.offered_per_sec,
            p.goodput_per_sec,
            p.shed_frac * 100.0,
            p.p99_us,
        ));
    }
    s
}

/// Hand-rolled JSON document for one serving run (plus optional curve).
fn serve_json(cfg: &ServeScenarioConfig, o: &ServeOutcome, points: &[CurvePoint]) -> String {
    let repack_kind = match o.repack_kind {
        Some(k) => format!("\"{}\"", k.name()),
        None => "null".to_string(),
    };
    let curve = points
        .iter()
        .map(|p| {
            format!(
                "{{\"factor\":{},\"offered_per_sec\":{:.3},\"goodput_per_sec\":{:.3},\
                 \"shed_frac\":{:.6},\"p99_us\":{:.3}}}",
                p.factor, p.offered_per_sec, p.goodput_per_sec, p.shed_frac, p.p99_us
            )
        })
        .collect::<Vec<_>>()
        .join(",");
    format!(
        "{{\"topology\":\"{}\",\"nodes\":{},\"ppn\":{},\"arrivals_kind\":\"{}\",\
         \"arrivals\":{},\"admitted\":{},\"sheds\":{},\"completed\":{},\"gave_up\":{},\
         \"retries\":{},\"shed_retries\":{},\"guard_trips\":{},\
         \"offered_per_sec\":{:.3},\"goodput_per_sec\":{:.3},\
         \"p50_us\":{:.3},\"p99_us\":{:.3},\"p999_us\":{:.3},\
         \"exec_seconds\":{:.9},\"credit_leaks\":{},\"dedup_hits\":{},\
         \"corrupt_detected\":{},\
         \"hot_final\":{},\"exactly_once\":{},\"load_repacks\":{},\
         \"repack_kind\":{repack_kind},\"repack_certified\":{},\
         \"epoch_bumps\":{},\"curve\":[{curve}]}}\n",
        cfg.topology.name(),
        cfg.nodes,
        cfg.ppn,
        cfg.arrivals.kind.name(),
        o.arrivals,
        o.admitted,
        o.sheds,
        o.completed,
        o.gave_up,
        o.retries,
        o.shed_retries,
        o.guard_trips,
        o.offered_per_sec,
        o.goodput_per_sec,
        o.p50_us,
        o.p99_us,
        o.p999_us,
        o.exec_seconds,
        o.credit_leaks,
        o.dedup_hits,
        o.corrupt_detected,
        o.hot_final,
        o.exactly_once,
        o.load_repacks,
        o.repack_certified,
        o.epoch_bumps,
    )
}

/// The CI verification matrix: every topology at representative sizes —
/// including non-power-of-two and partial LDF packings — crossed with
/// coalescing on/off and {fault-free, forwarder crash}. Fails (non-zero
/// exit) when any cell is not certified; the JSON carries the per-cell
/// reports plus the `all_certified` gate bit.
fn analyze_matrix(format: &str, threads: usize) -> Result<String, String> {
    // Representative populations per topology, including non-power-of-two
    // and partially-packed LDF sizes. Partial packings are single-fault
    // tolerant only outside the top slice's escape-critical set (the
    // analyzer itself established that — see vt-analyze's boundary-crash
    // test), so the two partial cells pin a victim from the safe region;
    // full packings use the default interior forwarder.
    type MatrixRow = (TopologyKind, &'static [(u32, Option<u32>)]);
    let sizes: [MatrixRow; 4] = [
        (TopologyKind::Fcg, &[(12, None)]),
        (TopologyKind::Mfcg, &[(16, None), (23, Some(20))]),
        (TopologyKind::Cfcg, &[(27, None), (29, Some(25))]),
        (TopologyKind::Hypercube, &[(8, None), (16, None)]),
    ];
    let mut jobs = Vec::new();
    for (kind, ns) in sizes {
        for &(n, pinned) in ns {
            for coalesce in [false, true] {
                for fault in [false, true] {
                    let mut cfg = vt_analyze::AnalyzeConfig::new(kind, n);
                    cfg.coalescing = coalesce;
                    if fault {
                        cfg.dead_sequence = pinned
                            .or_else(|| crash_victim(kind, n))
                            .into_iter()
                            .collect();
                    }
                    jobs.push((kind, n, coalesce, fault, cfg));
                }
            }
        }
    }
    // Cells are independent; fan them over the sweep driver. Each cell is
    // deterministic and results come back in input order, so the rendered
    // matrix (diffed byte-for-byte in CI) is identical at any thread count.
    let meta: Vec<_> = jobs.iter().map(|&(k, n, c, f, _)| (k, n, c, f)).collect();
    let reports =
        vt_apps::run_parallel(jobs, threads, |(_, _, _, _, cfg)| vt_analyze::analyze(cfg));
    let mut cells = Vec::new();
    let mut human = String::new();
    let mut all = true;
    for ((kind, n, coalesce, fault), report) in meta.into_iter().zip(reports) {
        let report = report?;
        let ok = report.certified();
        all &= ok;
        human.push_str(&format!(
            "{:10} n={:<3} coalesce={:3} fault={:5}  {}\n",
            kind.name(),
            n,
            if coalesce { "on" } else { "off" },
            if fault { "crash" } else { "none" },
            if ok { "CERTIFIED" } else { "NOT CERTIFIED" },
        ));
        cells.push(report.to_json());
    }
    let out = if format == "json" {
        format!(
            "{{\"all_certified\":{all},\"cells\":[{}]}}\n",
            cells.join(",")
        )
    } else {
        format!(
            "{human}matrix: {} cells, {}\n",
            cells.len(),
            if all {
                "all CERTIFIED"
            } else {
                "NOT all certified"
            }
        )
    };
    if all {
        Ok(out)
    } else {
        Err(format!("verification matrix NOT fully certified\n{out}"))
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn flags_parse_pairs() {
        let mut f = Flags::parse(&s(&["--nodes", "97", "--topology", "cfcg"])).unwrap();
        assert_eq!(f.take("nodes", 0u32).unwrap(), 97);
        assert_eq!(
            f.take_topology(TopologyKind::Fcg).unwrap(),
            TopologyKind::Cfcg
        );
        f.finish().unwrap();
    }

    #[test]
    fn flags_reject_garbage() {
        assert!(Flags::parse(&s(&["nodes"])).is_err());
        assert!(Flags::parse(&s(&["--nodes"])).is_err());
        let f = Flags::parse(&s(&["--bogus", "1"])).unwrap();
        assert!(f.finish().is_err());
    }

    #[test]
    fn parse_helpers() {
        assert_eq!(parse_topology("hc").unwrap(), TopologyKind::Hypercube);
        assert!(parse_topology("ring").is_err());
        assert_eq!(parse_scenario("20").unwrap(), Scenario::pct20());
        assert_eq!(
            parse_scenario("1/7").unwrap(),
            Scenario::Contention { every_nth: 7 }
        );
        assert!(parse_scenario("all").is_err());
        assert_eq!(parse_op("putv").unwrap(), OpSpec::vector_put());
        assert!(parse_op("cas").is_err());
    }

    #[test]
    fn topo_command_reports_structure() {
        let out = run_command("topo", &s(&["--kind", "x", "--nodes", "97"]));
        // --kind is not a recognised flag; topology is --topology.
        assert!(out.is_err());
        let out = run_command("topo", &s(&["--topology", "mfcg", "--nodes", "97"])).unwrap();
        assert!(out.contains("deadlock-free: true"));
        assert!(out.contains("97 nodes"));
    }

    #[test]
    fn analyze_command_certifies_and_reports() {
        let out = run_command(
            "analyze",
            &s(&["--topology", "mfcg", "--nodes", "23", "--fault", "crash:20"]),
        )
        .unwrap();
        assert!(out.contains("CERTIFIED deadlock-free"), "{out}");
        assert!(out.contains("acyclicity"));
        assert!(out.contains("model-check"));
    }

    #[test]
    fn analyze_command_emits_json() {
        let out = run_command(
            "analyze",
            &s(&[
                "--topology",
                "cfcg",
                "--nodes",
                "27",
                "--coalesce",
                "on",
                "--model",
                "off",
                "--format",
                "json",
            ]),
        )
        .unwrap();
        assert!(out.contains("\"certified\":true"), "{out}");
        assert!(out.contains("\"coalescing-refold\""));
    }

    #[test]
    fn analyze_command_refuses_partition_and_bad_flags() {
        // Crashing the escape-critical boundary node genuinely partitions
        // the 23-node partial MFCG packing; the command must error so
        // vtsim exits non-zero.
        let out = run_command(
            "analyze",
            &s(&[
                "--topology",
                "mfcg",
                "--nodes",
                "23",
                "--fault",
                "crash:2",
                "--model",
                "off",
            ]),
        );
        let err = out.unwrap_err();
        assert!(err.contains("NOT certified"), "{err}");
        assert!(err.contains("dead-ends"), "{err}");
        assert!(run_command("analyze", &s(&["--fault", "melt"])).is_err());
        assert!(run_command("analyze", &s(&["--coalesce", "maybe"])).is_err());
    }

    #[test]
    fn analyze_matrix_certifies_every_cell() {
        let out = run_command("analyze", &s(&["--matrix", "on", "--format", "json"])).unwrap();
        assert!(out.contains("\"all_certified\":true"), "{out}");
        // 4 topologies x sizes x coalescing x fault = 28 cells.
        assert_eq!(out.matches("\"topology\"").count(), 28, "{out}");
    }

    #[test]
    fn memory_command_builds_table() {
        let out = run_command("memory", &s(&["--nodes", "64", "--ppn", "4"])).unwrap();
        assert!(out.contains("fcg"));
        assert!(out.contains("hypercube"));
    }

    #[test]
    fn contention_command_runs_small() {
        let out = run_command(
            "contention",
            &s(&[
                "--procs",
                "32",
                "--ppn",
                "4",
                "--stride",
                "8",
                "--iterations",
                "2",
                "--topology",
                "mfcg",
                "--op",
                "fadd",
                "--scenario",
                "1/5",
            ]),
        )
        .unwrap();
        assert!(out.contains("mfcg / fadd / 20% contention"));
    }

    #[test]
    fn contention_command_accepts_coalesce_flag() {
        let args = |v: &str| {
            s(&[
                "--procs",
                "32",
                "--ppn",
                "4",
                "--stride",
                "8",
                "--iterations",
                "2",
                "--topology",
                "mfcg",
                "--op",
                "fadd",
                "--scenario",
                "1/5",
                "--coalesce",
                v,
            ])
        };
        let on = run_command("contention", &args("on")).unwrap();
        assert!(on.contains("coalescing:"), "{on}");
        assert!(on.contains("envelopes folded"), "{on}");
        let off = run_command("contention", &args("off")).unwrap();
        assert!(!off.contains("coalescing:"), "{off}");
        let err = run_command("contention", &args("maybe")).unwrap_err();
        assert!(err.contains("--coalesce"), "{err}");
    }

    #[test]
    fn gups_command_runs_small() {
        let out = run_command("gups", &s(&["--procs", "16", "--skew", "0.5"])).unwrap();
        assert!(out.contains("GUPS 16 procs"));
    }

    #[test]
    fn faults_command_runs_small() {
        let out = run_command(
            "faults",
            &s(&[
                "--topology",
                "mfcg",
                "--procs",
                "64",
                "--ops",
                "2",
                "--kill-at-us",
                "40",
            ]),
        )
        .unwrap();
        assert!(out.contains("forwarder kill on mfcg"), "{out}");
        assert!(out.contains("reroutes"), "{out}");
        assert!(out.contains("availability 0.938"), "{out}");
        // Membership off: no repair line in the output.
        assert!(!out.contains("membership repair"), "{out}");
    }

    #[test]
    fn faults_command_with_membership_reports_repair_counters() {
        let out = run_command(
            "faults",
            &s(&[
                "--topology",
                "mfcg",
                "--procs",
                "64",
                "--ops",
                "80",
                "--kill-at-us",
                "40",
                "--membership",
                "on",
            ]),
        )
        .unwrap();
        assert!(out.contains("membership repair:"), "{out}");
        assert!(out.contains("epoch bumps"), "{out}");
        assert!(run_command("faults", &s(&["--membership", "maybe"]))
            .unwrap_err()
            .contains("--membership"),);
    }

    #[test]
    fn repair_command_runs_boundary_defaults() {
        let out = run_command("repair", &[]).unwrap();
        assert!(out.contains("repair mfcg n=23 victim node2"), "{out}");
        assert!(out.contains("repair cfcg n=29 victim node24"), "{out}");
        assert!(out.contains("REFUSES crashed packing"), "{out}");
        assert!(out.contains("COMPLETED"), "{out}");
        assert!(out.contains("CERTIFIED"), "{out}");
        assert!(out.contains("0 credit leaks"), "{out}");
    }

    #[test]
    fn repair_command_emits_json_and_accepts_custom_scenario() {
        let out = run_command(
            "repair",
            &s(&[
                "--topology",
                "mfcg",
                "--nodes",
                "23",
                "--victim",
                "2",
                "--format",
                "json",
            ]),
        )
        .unwrap();
        assert!(out.starts_with("{\"all_repaired\":true"), "{out}");
        assert!(out.contains("\"static_refusal\":true"), "{out}");
        assert!(out.contains("\"post_repair_certified\":true"), "{out}");
        assert!(out.contains("\"epoch_bumps\":1"), "{out}");
        // Bad flags are rejected up front.
        assert!(run_command("repair", &s(&["--format", "xml"]))
            .unwrap_err()
            .contains("--format"));
        assert!(
            run_command("repair", &s(&["--nodes", "23", "--victim", "99"]))
                .unwrap_err()
                .contains("victim")
        );
    }

    #[test]
    fn serve_command_runs_steady_preset() {
        let out = run_command("serve", &s(&["--preset", "steady"])).unwrap();
        assert!(
            out.contains("serve fcg n=2 ppn=4 (8 procs), steady arrivals"),
            "{out}"
        );
        assert!(out.contains("exactly-once HOLDS"), "{out}");
        assert!(out.contains("0 credit leaks"), "{out}");
        assert!(out.contains("latency: p50"), "{out}");
    }

    #[test]
    fn serve_command_sheds_past_saturation_and_is_deterministic() {
        // A scaled-down flash crowd: 32 clients, 10x spike, json output.
        let args = s(&[
            "--preset",
            "flash-crowd",
            "--nodes",
            "16",
            "--ppn",
            "2",
            "--rate",
            "60000",
            "--horizon-us",
            "4000",
            "--format",
            "json",
        ]);
        let a = run_command("serve", &args).unwrap();
        let b = run_command("serve", &args).unwrap();
        assert_eq!(a, b);
        assert!(a.contains("\"arrivals_kind\":\"flash-crowd\""), "{a}");
        assert!(a.contains("\"exactly_once\":true"), "{a}");
        assert!(a.contains("\"credit_leaks\":0"), "{a}");
        assert!(!a.contains("\"sheds\":0,"), "overload cell must shed: {a}");
    }

    #[test]
    fn serve_command_renders_goodput_curve() {
        let out = run_command("serve", &s(&["--preset", "steady", "--curve", "1,8"])).unwrap();
        assert!(out.contains("goodput vs offered load:"), "{out}");
        assert_eq!(out.matches("  x").count(), 2, "{out}");
    }

    #[test]
    fn serve_command_load_repack_certifies_epoch() {
        let out = run_command("serve", &s(&["--preset", "load-repack"])).unwrap();
        assert!(
            out.contains("load re-pack: fcg -> mfcg committed under traffic (epoch 1), CERTIFIED"),
            "{out}"
        );
    }

    #[test]
    fn serve_command_rejects_bad_flags() {
        assert!(run_command("serve", &s(&["--preset", "surge"]))
            .unwrap_err()
            .contains("preset"));
        assert!(run_command("serve", &s(&["--load-repack", "maybe"]))
            .unwrap_err()
            .contains("--load-repack"));
        assert!(run_command("serve", &s(&["--curve", "fast"]))
            .unwrap_err()
            .contains("--curve"));
        assert!(
            run_command("serve", &s(&["--topology", "hc", "--nodes", "97"]))
                .unwrap_err()
                .contains("does not support")
        );
    }

    #[test]
    fn chaos_command_quick_campaign_holds_every_invariant() {
        let out = run_command("chaos", &s(&["--quick", "on"])).unwrap();
        assert!(out.contains("# Chaos campaign: 8 cells"), "{out}");
        assert!(
            out.contains("all invariants HELD, replay byte-identical"),
            "{out}"
        );
        assert!(!out.contains("VIOLATED"), "{out}");
        assert!(!out.contains("minimized reproducer"), "{out}");
    }

    #[test]
    fn chaos_command_json_is_deterministic_across_thread_counts() {
        let args = |t: &str| {
            s(&[
                "--quick",
                "on",
                "--cells",
                "6",
                "--threads",
                t,
                "--format",
                "json",
            ])
        };
        let serial = run_command("chaos", &args("1")).unwrap();
        let parallel = run_command("chaos", &args("4")).unwrap();
        assert_eq!(serial, parallel);
        assert!(serial.contains("\"all_passed\":true"), "{serial}");
        assert_eq!(serial.matches("\"idx\"").count(), 6, "{serial}");
    }

    #[test]
    fn chaos_command_rejects_bad_flags() {
        assert!(run_command("chaos", &s(&["--format", "xml"]))
            .unwrap_err()
            .contains("--format"));
        assert!(run_command("chaos", &s(&["--quick", "maybe"]))
            .unwrap_err()
            .contains("--quick"));
        assert!(run_command("chaos", &s(&["--cells", "0"]))
            .unwrap_err()
            .contains("at least one cell"));
    }

    #[test]
    fn unknown_command_shows_usage() {
        let err = run_command("wat", &[]).unwrap_err();
        assert!(err.contains("USAGE"));
    }

    #[test]
    fn dot_command_renders_graphs() {
        let out = run_command("dot", &s(&["--topology", "mfcg", "--nodes", "9"])).unwrap();
        assert!(out.starts_with("graph mfcg {"));
        let out = run_command(
            "dot",
            &s(&["--topology", "cfcg", "--nodes", "27", "--tree", "0"]),
        )
        .unwrap();
        assert!(out.starts_with("digraph cfcg_tree {"));
        assert_eq!(out.matches(" -> ").count(), 26);
    }

    #[test]
    fn kfcg_parses_and_builds() {
        assert_eq!(parse_topology("kfcg5").unwrap(), TopologyKind::KFcg(5));
        assert!(parse_topology("kfcg0").is_err());
        let out = run_command("topo", &s(&["--topology", "kfcg4", "--nodes", "81"])).unwrap();
        assert!(out.contains("deadlock-free: true"));
    }

    #[test]
    fn hypercube_node_count_guard() {
        let err = run_command("topo", &s(&["--topology", "hc", "--nodes", "97"])).unwrap_err();
        assert!(err.contains("does not support"));
    }
}
