//! Offline stand-in for `serde`.
//!
//! See `vendor/serde_derive` for the rationale: the workspace derives
//! `Serialize`/`Deserialize` as forward-looking markers but never calls a
//! serialiser, so the derives can safely expand to nothing.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};
