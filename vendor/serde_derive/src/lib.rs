//! Offline stand-in for `serde_derive`.
//!
//! This build environment has no access to crates.io, and nothing in the
//! workspace actually serialises anything yet: the `#[derive(Serialize,
//! Deserialize)]` attributes only mark types as wire-ready for future use.
//! These macros therefore expand to nothing, which keeps every annotated
//! type compiling while adding zero code. If real serialisation is ever
//! needed, replace the `vendor/serde*` crates with the upstream ones.

use proc_macro::TokenStream;

/// No-op replacement for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op replacement for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
