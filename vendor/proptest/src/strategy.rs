//! Value-generation strategies: the subset of proptest's combinators the
//! workspace uses, built on the deterministic [`TestRng`].

use crate::test_runner::TestRng;
use std::fmt::Debug;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Generates values of an associated type from a seeded RNG.
///
/// Unlike upstream proptest there is no value tree and no shrinking: a
/// strategy is just a deterministic `rng -> value` function.
pub trait Strategy {
    /// The type of generated values.
    type Value: Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice among same-typed strategies (`prop_oneof!`). For
/// heterogeneous options, box them: `prop_oneof!` composes with the
/// `Box<dyn Strategy<Value = T>>` impl below.
pub struct Union<S> {
    options: Vec<S>,
}

impl<S: Strategy> Union<S> {
    /// Wraps the candidate strategies; panics if empty.
    pub fn new(options: Vec<S>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<S: Strategy> Strategy for Union<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

/// Full-range generation for primitive types (`any::<T>()`).
pub trait Arbitrary: Debug + Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Strategy over the full range of an [`Arbitrary`] type.
pub struct Any<T>(PhantomData<T>);

/// Creates a full-range strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let span = (*self.end() as u64)
                    .wrapping_sub(*self.start() as u64)
                    .wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range of a 64-bit type.
                    return rng.next_u64() as $t;
                }
                self.start().wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.f64()
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);
tuple_strategy!(A, B, C, D, E, F, G, H, I);
tuple_strategy!(A, B, C, D, E, F, G, H, I, J);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::for_case("ranges", 0);
        for _ in 0..1000 {
            let v = (5u32..17).generate(&mut rng);
            assert!((5..17).contains(&v));
            let w = (3u8..=7).generate(&mut rng);
            assert!((3..=7).contains(&w));
        }
    }

    #[test]
    fn union_picks_every_option() {
        let u = crate::prop_oneof![Just(1u8), Just(2), Just(3)];
        let mut rng = TestRng::for_case("union", 0);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[u.generate(&mut rng) as usize] = true;
        }
        assert_eq!(seen, [false, true, true, true]);
    }

    #[test]
    fn map_and_tuples_compose() {
        let s = (1u32..5, 0u8..2).prop_map(|(a, b)| a as u64 + b as u64);
        let mut rng = TestRng::for_case("map", 0);
        for _ in 0..100 {
            assert!(s.generate(&mut rng) < 6);
        }
    }
}
