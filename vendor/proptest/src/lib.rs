//! Offline stand-in for `proptest`.
//!
//! The build environment has no access to crates.io, so this crate
//! reimplements the small slice of proptest the workspace tests rely on:
//!
//! * the [`proptest!`] macro with `pat in strategy` and `name: type`
//!   arguments and an optional `#![proptest_config(..)]` header,
//! * integer-range, tuple, [`Just`], `any::<T>()`, `prop_oneof!` and
//!   `prop_map` strategies,
//! * `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!`.
//!
//! Differences from upstream: generation is deterministic (seeded from the
//! test's module path and name, so runs reproduce bit-identically without
//! regression files) and there is **no shrinking** — a failing case prints
//! its generated inputs and panics. That trade keeps the runner ~300 lines
//! and dependency-free while preserving the property-test workflow.

#![forbid(unsafe_code)]

pub mod strategy;
pub mod test_runner;

/// The glob-importable surface, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Picks uniformly among several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($s),+])
    };
}

/// Declares property tests. Each `fn name(args) { body }` becomes a
/// `#[test]` running `cases` deterministic iterations.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal: splits the body of `proptest!` into individual test fns.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident($($args:tt)*) $body:block
      $($rest:tt)*
    ) => {
        $crate::__proptest_case! { ($cfg) [$(#[$meta])*] fn $name [$($args)*] [] $body }
        $crate::__proptest_tests! { ($cfg) $($rest)* }
    };
}

/// Internal: munches one test's argument list into `(pattern, strategy)`
/// pairs (`name: ty` sugar becomes `name in any::<ty>()`), then emits the
/// test function.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_case {
    // -- argument munchers -------------------------------------------------
    ( ($cfg:expr) [$(#[$meta:meta])*] fn $name:ident
      [$pat:pat in $strat:expr, $($rest:tt)*] [$($acc:tt)*] $body:block ) => {
        $crate::__proptest_case! { ($cfg) [$(#[$meta])*] fn $name
            [$($rest)*] [$($acc)* {$pat, $strat}] $body }
    };
    ( ($cfg:expr) [$(#[$meta:meta])*] fn $name:ident
      [$pat:pat in $strat:expr] [$($acc:tt)*] $body:block ) => {
        $crate::__proptest_case! { ($cfg) [$(#[$meta])*] fn $name
            [] [$($acc)* {$pat, $strat}] $body }
    };
    ( ($cfg:expr) [$(#[$meta:meta])*] fn $name:ident
      [$arg:ident : $ty:ty, $($rest:tt)*] [$($acc:tt)*] $body:block ) => {
        $crate::__proptest_case! { ($cfg) [$(#[$meta])*] fn $name
            [$($rest)*] [$($acc)* {$arg, $crate::strategy::any::<$ty>()}] $body }
    };
    ( ($cfg:expr) [$(#[$meta:meta])*] fn $name:ident
      [$arg:ident : $ty:ty] [$($acc:tt)*] $body:block ) => {
        $crate::__proptest_case! { ($cfg) [$(#[$meta])*] fn $name
            [] [$($acc)* {$arg, $crate::strategy::any::<$ty>()}] $body }
    };
    // -- emission ----------------------------------------------------------
    ( ($cfg:expr) [$(#[$meta:meta])*] fn $name:ident
      [] [$({$pat:pat, $strat:expr})*] $body:block ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::test_runner::ProptestConfig = $cfg;
            for __case in 0..__cfg.cases {
                let mut __rng = $crate::test_runner::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    __case,
                );
                let mut __inputs: ::std::vec::Vec<::std::string::String> =
                    ::std::vec::Vec::new();
                $(
                    let __value =
                        $crate::strategy::Strategy::generate(&$strat, &mut __rng);
                    __inputs.push(::std::format!(
                        "  {} = {:?}", stringify!($pat), __value));
                    let $pat = __value;
                )*
                let __guard = $crate::test_runner::CaseGuard::new(
                    stringify!($name), __case, __inputs);
                $body
                ::std::mem::drop(__guard);
            }
        }
    };
}
