//! The deterministic case runner behind the [`proptest!`](crate::proptest)
//! macro: per-case RNG seeding and failure reporting.

/// Number of cases to run per property (overridable per block with
/// `#![proptest_config(ProptestConfig::with_cases(n))]`).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// How many generated cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` iterations per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// SplitMix64 — the same finaliser `vt-simnet` uses for seed scrambling.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A small deterministic RNG (SplitMix64 stream).
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the RNG for one `(test, case)` pair: a hash of the test's
    /// path mixed with the case index, so every test and case draws an
    /// independent, reproducible stream.
    pub fn for_case(test_path: &str, case: u32) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325; // FNV-1a offset basis
        for b in test_path.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng {
            state: splitmix64(h ^ splitmix64(u64::from(case))),
        }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        splitmix64(self.state)
    }

    /// Uniform value in `0..bound` (panics if `bound == 0`). Uses rejection
    /// sampling so the distribution is exactly uniform.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        let zone = u64::MAX - (u64::MAX % bound);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % bound;
            }
        }
    }

    /// Uniform float in `[0, 1)` with 53 bits of precision.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Prints the generated inputs of a failing case. Armed for the duration
/// of a case body; only reports when dropped during a panic.
pub struct CaseGuard {
    name: &'static str,
    case: u32,
    inputs: Vec<String>,
}

impl CaseGuard {
    /// Arms the guard with the case's rendered inputs.
    pub fn new(name: &'static str, case: u32, inputs: Vec<String>) -> Self {
        CaseGuard { name, case, inputs }
    }
}

impl Drop for CaseGuard {
    fn drop(&mut self) {
        if std::thread::panicking() {
            eprintln!(
                "proptest: {} failed at case {} with inputs:\n{}",
                self.name,
                self.case,
                self.inputs.join("\n")
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_case_same_stream() {
        let mut a = TestRng::for_case("x", 3);
        let mut b = TestRng::for_case("x", 3);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn cases_diverge() {
        let mut a = TestRng::for_case("x", 0);
        let mut b = TestRng::for_case("x", 1);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn below_is_in_bounds() {
        let mut rng = TestRng::for_case("below", 0);
        for _ in 0..10_000 {
            assert!(rng.below(7) < 7);
        }
    }
}
